// Package ids implements in-vehicle network intrusion detection — the
// compensating control the paper's Secure Networks layer relies on for
// IVN protocols that "lack security mechanisms". Four detector families
// cover the classic CAN attack classes:
//
//   - Frequency: windowed per-ID rate bounds (floods, message suspension)
//   - Interval: per-frame inter-arrival checks (injection between
//     legitimate periodic frames)
//   - Entropy: payload byte-entropy drift (fuzzing)
//   - Specification: ID whitelist, DLC and signal-range rules (malformed
//     and out-of-protocol traffic)
//
// Detectors are trained on clean traffic and then observe a live stream;
// they are installable and replaceable at runtime through the policy
// layer, which is the extensibility story of experiment E11/E12.
package ids

import (
	"fmt"
	"math"
	"sort"

	"autosec/internal/can"
	"autosec/internal/sim"
)

// Alert is one detector finding.
type Alert struct {
	At       sim.Time
	Detector string
	ID       can.ID
	Reason   string
}

func (a Alert) String() string {
	return fmt.Sprintf("[%v] %s id=%#x: %s", a.At, a.Detector, uint32(a.ID), a.Reason)
}

// Detector is a streaming intrusion detector. Train consumes clean
// reference traffic; Observe consumes one live record and returns any
// alerts it raises.
type Detector interface {
	Name() string
	Train(trace *can.Trace)
	Observe(rec can.Record) []Alert
}

// FrequencyDetector learns each identifier's frame rate over fixed
// windows and alerts when a live window's count leaves the learned band.
type FrequencyDetector struct {
	// Window is the counting window (default 100ms).
	Window sim.Duration
	// Slack widens the learned [min,max] count band multiplicatively.
	Slack float64

	bounds map[can.ID][2]float64 // learned min/max per window
	// boundIDs holds the learned IDs sorted ascending: the window-close
	// sweep walks this slice, not the map, so alert order is deterministic.
	boundIDs   []can.ID
	winStart   sim.Time
	counts     map[can.ID]int
	suppressed map[can.ID]bool
}

// NewFrequencyDetector creates a detector with a 100ms window and 50%
// slack.
func NewFrequencyDetector() *FrequencyDetector {
	return &FrequencyDetector{Window: 100 * sim.Millisecond, Slack: 0.5}
}

// Name implements Detector.
func (d *FrequencyDetector) Name() string { return "frequency" }

// Train implements Detector.
func (d *FrequencyDetector) Train(trace *can.Trace) {
	d.bounds = make(map[can.ID][2]float64)
	if trace.Len() == 0 {
		return
	}
	counts := make(map[can.ID][]int)
	// Min/max scan rather than first/last: training traces assembled from
	// several sources are not necessarily time-sorted.
	start, end := trace.Records[0].At, trace.Records[0].At
	for _, r := range trace.Records {
		if r.At < start {
			start = r.At
		}
		if r.At > end {
			end = r.At
		}
	}
	nWin := int((end-start)/d.Window) + 1
	perWin := make(map[can.ID][]int)
	for id := range countIDs(trace) {
		perWin[id] = make([]int, nWin)
	}
	for _, r := range trace.Records {
		w := int((r.At - start) / d.Window)
		perWin[r.Frame.ID][w]++
	}
	for id, wins := range perWin {
		counts[id] = wins
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range wins {
			fc := float64(c)
			if fc < lo {
				lo = fc
			}
			if fc > hi {
				hi = fc
			}
		}
		// The ±1 absolute margin absorbs window-boundary drift: a message
		// whose period equals the window lands 0 or 2 times in a window
		// depending on phase, without that being an anomaly.
		d.bounds[id] = [2]float64{lo*(1-d.Slack) - 1, hi*(1+d.Slack) + 1}
	}
	d.boundIDs = d.boundIDs[:0]
	for id := range d.bounds {
		d.boundIDs = append(d.boundIDs, id)
	}
	sort.Slice(d.boundIDs, func(i, j int) bool { return d.boundIDs[i] < d.boundIDs[j] })
	d.counts = make(map[can.ID]int)
	d.suppressed = make(map[can.ID]bool)
}

func countIDs(trace *can.Trace) map[can.ID]bool {
	out := make(map[can.ID]bool)
	for _, r := range trace.Records {
		out[r.Frame.ID] = true
	}
	return out
}

// Observe implements Detector.
func (d *FrequencyDetector) Observe(rec can.Record) []Alert {
	if d.counts == nil {
		d.counts = make(map[can.ID]int)
		d.suppressed = make(map[can.ID]bool)
	}
	var alerts []Alert
	if rec.At-d.winStart >= d.Window {
		// Close the window: check all learned IDs, including silent ones
		// (suspension attack shows as counts below the learned minimum).
		for _, id := range d.boundIDs {
			b := d.bounds[id]
			c := float64(d.counts[id])
			switch {
			case c > b[1]:
				alerts = append(alerts, Alert{At: rec.At, Detector: d.Name(), ID: id,
					Reason: fmt.Sprintf("rate high: %d > %.1f per window", int(c), b[1])})
			case c < b[0] && !d.suppressed[id]:
				// Alert once per suppression episode to bound alert volume.
				d.suppressed[id] = true
				alerts = append(alerts, Alert{At: rec.At, Detector: d.Name(), ID: id,
					Reason: fmt.Sprintf("rate low: %d < %.1f per window", int(c), b[0])})
			default:
				d.suppressed[id] = false
			}
		}
		d.counts = make(map[can.ID]int)
		d.winStart = rec.At
	}
	d.counts[rec.Frame.ID]++
	return alerts
}

// IntervalDetector learns each periodic identifier's minimum inter-arrival
// time and alerts on frames arriving much earlier than the learned period
// — the signature of injected frames racing the legitimate sender.
type IntervalDetector struct {
	// MinFraction of the learned period below which a frame is anomalous.
	MinFraction float64

	period map[can.ID]sim.Duration
	lastAt map[can.ID]sim.Time
}

// NewIntervalDetector creates a detector alerting below half the learned
// period.
func NewIntervalDetector() *IntervalDetector {
	return &IntervalDetector{MinFraction: 0.5}
}

// Name implements Detector.
func (d *IntervalDetector) Name() string { return "interval" }

// Train implements Detector.
func (d *IntervalDetector) Train(trace *can.Trace) {
	d.period = make(map[can.ID]sim.Duration)
	d.lastAt = make(map[can.ID]sim.Time)
	for id := range countIDs(trace) {
		ivs := trace.Intervals(id)
		if len(ivs) < 3 {
			continue // aperiodic or too rare to model
		}
		// Use the median as the period estimate.
		var s sim.Summary
		for _, iv := range ivs {
			s.Observe(float64(iv))
		}
		d.period[id] = sim.Duration(s.Quantile(0.5))
	}
}

// Observe implements Detector.
func (d *IntervalDetector) Observe(rec can.Record) []Alert {
	if d.lastAt == nil {
		d.lastAt = make(map[can.ID]sim.Time)
	}
	id := rec.Frame.ID
	defer func() { d.lastAt[id] = rec.At }()
	p, modelled := d.period[id]
	last, seen := d.lastAt[id]
	if !modelled || !seen {
		return nil
	}
	iv := rec.At - last
	if float64(iv) < d.MinFraction*float64(p) {
		return []Alert{{At: rec.At, Detector: d.Name(), ID: id,
			Reason: fmt.Sprintf("interval %v < %.0f%% of period %v", iv, d.MinFraction*100, p)}}
	}
	return nil
}

// EntropyDetector tracks per-ID payload byte entropy over sliding batches
// and alerts when a batch's entropy departs the trained band. Fuzzing
// (random payloads) drives entropy up; stuck/replayed payloads drive it
// to zero.
type EntropyDetector struct {
	// BatchSize is the number of frames per entropy estimate.
	BatchSize int
	// Tolerance is the allowed absolute deviation in bits.
	Tolerance float64

	trained map[can.ID]float64
	buf     map[can.ID][][]byte
}

// NewEntropyDetector creates a detector with batch 32, tolerance 1.2 bits.
func NewEntropyDetector() *EntropyDetector {
	return &EntropyDetector{BatchSize: 32, Tolerance: 1.2}
}

// Name implements Detector.
func (d *EntropyDetector) Name() string { return "entropy" }

// payloadEntropy is the byte-level Shannon entropy of the payloads.
func payloadEntropy(payloads [][]byte) float64 {
	var hist [256]int
	total := 0
	for _, p := range payloads {
		for _, b := range p {
			hist[b]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Train implements Detector.
func (d *EntropyDetector) Train(trace *can.Trace) {
	d.trained = make(map[can.ID]float64)
	d.buf = make(map[can.ID][][]byte)
	byID := make(map[can.ID][][]byte)
	for _, r := range trace.Records {
		byID[r.Frame.ID] = append(byID[r.Frame.ID], r.Frame.Data)
	}
	for id, ps := range byID {
		if len(ps) < d.BatchSize {
			continue
		}
		// Train on the same statistic Observe computes: the mean entropy
		// of BatchSize-frame batches. Whole-trace entropy would run higher
		// than any batch (counters sweep more of their range over a long
		// trace) and make every clean batch look anomalous.
		sum, n := 0.0, 0
		for i := 0; i+d.BatchSize <= len(ps); i += d.BatchSize {
			sum += payloadEntropy(ps[i : i+d.BatchSize])
			n++
		}
		d.trained[id] = sum / float64(n)
	}
}

// Observe implements Detector.
func (d *EntropyDetector) Observe(rec can.Record) []Alert {
	if d.buf == nil {
		d.buf = make(map[can.ID][][]byte)
	}
	id := rec.Frame.ID
	ref, modelled := d.trained[id]
	if !modelled {
		return nil
	}
	d.buf[id] = append(d.buf[id], rec.Frame.Data)
	if len(d.buf[id]) < d.BatchSize {
		return nil
	}
	h := payloadEntropy(d.buf[id])
	d.buf[id] = nil
	if math.Abs(h-ref) > d.Tolerance {
		return []Alert{{At: rec.At, Detector: d.Name(), ID: id,
			Reason: fmt.Sprintf("entropy %.2f vs trained %.2f bits", h, ref)}}
	}
	return nil
}

// SignalRange constrains one payload byte of an identifier.
type SignalRange struct {
	Byte   int
	Lo, Hi byte
}

// SpecDetector enforces an explicit communication-matrix specification:
// known identifiers, expected DLC, and per-byte signal ranges. Unlike the
// statistical detectors it needs no training and has (by construction)
// no false positives on conforming traffic.
type SpecDetector struct {
	// DLC maps each permitted ID to its expected payload length (-1: any).
	DLC map[can.ID]int
	// Ranges lists signal constraints per ID.
	Ranges map[can.ID][]SignalRange
	// AlertUnknownID controls whether unlisted identifiers alert.
	AlertUnknownID bool
}

// NewSpecDetector creates an empty specification.
func NewSpecDetector() *SpecDetector {
	return &SpecDetector{DLC: make(map[can.ID]int), Ranges: make(map[can.ID][]SignalRange), AlertUnknownID: true}
}

// Name implements Detector.
func (d *SpecDetector) Name() string { return "spec" }

// Train implements Detector. SpecDetector derives the ID whitelist and
// DLCs from clean traffic when they were not configured explicitly.
func (d *SpecDetector) Train(trace *can.Trace) {
	if len(d.DLC) > 0 {
		return // explicitly configured: training is a no-op
	}
	for _, r := range trace.Records {
		if cur, ok := d.DLC[r.Frame.ID]; !ok {
			d.DLC[r.Frame.ID] = len(r.Frame.Data)
		} else if cur != len(r.Frame.Data) {
			d.DLC[r.Frame.ID] = -1
		}
	}
}

// Observe implements Detector.
func (d *SpecDetector) Observe(rec can.Record) []Alert {
	id := rec.Frame.ID
	want, known := d.DLC[id]
	if !known {
		if d.AlertUnknownID {
			return []Alert{{At: rec.At, Detector: d.Name(), ID: id, Reason: "unknown identifier"}}
		}
		return nil
	}
	if want >= 0 && len(rec.Frame.Data) != want {
		return []Alert{{At: rec.At, Detector: d.Name(), ID: id,
			Reason: fmt.Sprintf("DLC %d, expected %d", len(rec.Frame.Data), want)}}
	}
	for _, sr := range d.Ranges[id] {
		if sr.Byte >= len(rec.Frame.Data) {
			continue
		}
		v := rec.Frame.Data[sr.Byte]
		if v < sr.Lo || v > sr.Hi {
			return []Alert{{At: rec.At, Detector: d.Name(), ID: id,
				Reason: fmt.Sprintf("byte %d value %#x outside [%#x,%#x]", sr.Byte, v, sr.Lo, sr.Hi)}}
		}
	}
	return nil
}
