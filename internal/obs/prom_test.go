package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("audit/appends").Add(12)
	r.Gauge("can/load").Set(0.375)
	r.Probe("gateway/zone-cabin/forwarded", func() float64 { return 42 })
	h := r.Histogram("can/frame_time_us", []float64{10, 100})
	for _, v := range []float64{5, 50, 50, 500} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE autosec_audit_appends counter\nautosec_audit_appends 12\n",
		"# TYPE autosec_can_load gauge\nautosec_can_load 0.375\n",
		"# TYPE autosec_gateway_zone_cabin_forwarded gauge\nautosec_gateway_zone_cabin_forwarded 42\n",
		"autosec_can_frame_time_us_bucket{le=\"10\"} 1\n",
		"autosec_can_frame_time_us_bucket{le=\"100\"} 3\n",
		"autosec_can_frame_time_us_bucket{le=\"+Inf\"} 4\n",
		"autosec_can_frame_time_us_sum 605\n",
		"autosec_can_frame_time_us_count 4\n",
		"# TYPE autosec_can_frame_time_us_max gauge\nautosec_can_frame_time_us_max 500\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Families must be sorted by name for byte-determinism.
	var names []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			names = append(names, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("families not sorted: %q >= %q", names[i-1], names[i])
		}
	}

	// Byte-determinism: rendering twice is identical.
	var again bytes.Buffer
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two renders of the same registry must be byte-identical")
	}
}

func TestWritePrometheusMaterializedProbeWins(t *testing.T) {
	live := 3.0
	r := NewRegistry()
	r.Probe("zone/frames", func() float64 { return live })
	r.Materialize()
	live = 99

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "autosec_zone_frames 3\n") {
		t.Fatalf("materialized probe must export the frozen reading:\n%s", buf.String())
	}

	var nilReg *Registry
	if err := nilReg.WritePrometheus(&buf); err != nil {
		t.Fatal("nil registry must write nothing without error")
	}
}
