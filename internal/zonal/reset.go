package zonal

import "autosec/internal/gateway"

// Pooled-vehicle lifecycle support. MarkBaseline seals the fabric's
// post-construction topology (zones, leaf domains, logical rules,
// observers); ResetToBaseline rewinds to that snapshot: scenario zones,
// domains, rules and observers are dropped, every zone gateway resets to
// its own baseline (lifting quarantines and zeroing counters), and the
// compiled per-zone rule shards are rebuilt from the baseline logical
// rule set so a reset fabric routes exactly like a freshly built one.

// fabBaseline is the sealed post-construction state of a Fabric.
type fabBaseline struct {
	sealed        bool
	zones         int
	domains       int // len(domainOrder)
	rules         int
	observers     int
	defaultAction gateway.Action
}

// MarkBaseline records the fabric's current topology as the reset target.
// It also seals every zone gateway's baseline.
func (f *Fabric) MarkBaseline() {
	f.base = fabBaseline{
		sealed:        true,
		zones:         len(f.zones),
		domains:       len(f.domainOrder),
		rules:         len(f.rules),
		observers:     len(f.observers),
		defaultAction: f.defaultAction,
	}
	for _, z := range f.zones {
		z.baseLocals = len(z.locals)
		z.GW.MarkBaseline()
	}
}

// ResetToBaseline rewinds the fabric to its MarkBaseline snapshot. The
// backbone medium must be reset separately (core.Vehicle.Reset does so),
// since the fabric does not own it.
func (f *Fabric) ResetToBaseline() {
	if !f.base.sealed {
		panic("zonal: ResetToBaseline before MarkBaseline")
	}
	for i := f.base.domains; i < len(f.domainOrder); i++ {
		delete(f.domainZone, f.domainOrder[i])
		f.domainOrder[i] = ""
	}
	f.domainOrder = f.domainOrder[:f.base.domains]
	for i := f.base.zones; i < len(f.zones); i++ {
		delete(f.byName, f.zones[i].Name)
		f.zones[i] = nil
	}
	f.zones = f.zones[:f.base.zones]
	for _, z := range f.zones {
		for i := z.baseLocals; i < len(z.locals); i++ {
			z.locals[i] = ""
		}
		z.locals = z.locals[:z.baseLocals]
		z.GW.ResetToBaseline()
	}
	for i := f.base.rules; i < len(f.rules); i++ {
		f.rules[i] = nil
	}
	f.rules = f.rules[:f.base.rules]
	for _, r := range f.rules {
		r.Matched.Value = 0
		r.RateDrops.Value = 0
	}
	f.defaultAction = f.base.defaultAction
	for _, z := range f.zones {
		z.GW.DefaultAction = f.defaultAction
	}
	for i := f.base.observers; i < len(f.observers); i++ {
		f.observers[i] = nil
	}
	f.observers = f.observers[:f.base.observers]
	f.BackboneFrames.Value = 0
	f.BackboneDeliveries.Value = 0
	for _, z := range f.zones {
		z.bbDeliveries.Value = 0
	}
	for _, bn := range f.bb {
		bn.port.frames.Value = 0
	}
	f.recompile()
}
