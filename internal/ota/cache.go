// cache.go implements verify-once-per-campaign memoization: the OTA
// "backend" of a million-vehicle fleet serves the same signed metadata
// and the same payload set to every vehicle of a model, so re-running
// ed25519 signature verification and payload hashing per vehicle is pure
// waste. VerifyCache memoizes the two expensive verification steps —
// signature checks keyed by (repo, key fingerprint, version,
// canonical-bytes hash) and per-bundle target attestation (the
// director×image cross-check plus payload hash checks) — while every
// per-vehicle check (expiry at the vehicle's own clock, metadata and
// target version counters, vehicle/group scoping, ECU compatibility)
// stays uncached. The cache answers only "are these bytes validly
// signed" and "do these repositories agree on these payload bytes";
// nothing vehicle-specific is ever memoized, so a cache hit is exactly
// as strong as a cold verification.
//
// Attestation is keyed by Bundle identity: a published bundle is
// immutable campaign state (the backend signs it once per wave and
// model), so the first vehicle to verify it settles the question for the
// fleet. A tampered payload necessarily arrives in a different Bundle
// value and is re-verified cold.
package ota

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"

	"autosec/internal/sim"
)

// SigKey is the memoization key of one metadata signature check: the
// repository name, the verification key fingerprint (so a trust-epoch
// rotation can never satisfy a stale entry), the metadata version
// counter and the SHA-256 of the canonical signed bytes.
type SigKey struct {
	Repo    string
	KeyID   uint64
	Version uint64
	Sum     [32]byte
}

// attestation is the cached result of cross-checking one bundle's
// director targets against its image targets and payload bytes. plan
// holds the attested targets in director order; err is the verification
// failure, cached too — a bad bundle stays bad for every vehicle.
type attestation struct {
	plan []Target
	err  error
}

// CacheStats reports a cache's traffic. Lookups count memoization
// queries; SigVerifies and AttestBuilds count the cold operations
// actually performed (ed25519 verifications and bundle cross-checks).
// Under concurrent waves the counts are still deterministic: entries are
// inserted under a write lock with a second lookup, so each unique
// signature or bundle is built exactly once no matter how many workers
// race to it.
type CacheStats struct {
	SigLookups    int64
	SigVerifies   int64
	AttestLookups int64
	AttestBuilds  int64
}

// VerifyCache memoizes bundle verification for one trust domain (a
// campaign). Safe for concurrent use by the fleet driver's workers; the
// hit path takes only a read lock and performs no allocation.
type VerifyCache struct {
	mu      sync.RWMutex
	sigs    map[SigKey]bool
	attests map[*Bundle]*attestation

	sigLookups    atomic.Int64
	sigVerifies   atomic.Int64
	attestLookups atomic.Int64
	attestBuilds  atomic.Int64
}

// NewVerifyCache creates an empty cache.
func NewVerifyCache() *VerifyCache {
	return &VerifyCache{
		sigs:    make(map[SigKey]bool),
		attests: make(map[*Bundle]*attestation),
	}
}

// Stats snapshots the cache traffic counters.
func (vc *VerifyCache) Stats() CacheStats {
	return CacheStats{
		SigLookups:    vc.sigLookups.Load(),
		SigVerifies:   vc.sigVerifies.Load(),
		AttestLookups: vc.attestLookups.Load(),
		AttestBuilds:  vc.attestBuilds.Load(),
	}
}

// sigValid reports whether m's signature under key is valid, memoized.
// canon must be m's canonical bytes (rendered by the caller into its own
// scratch so the hit path stays allocation-free).
func (vc *VerifyCache) sigValid(m *Metadata, key ed25519.PublicKey, keyID uint64, canon []byte) bool {
	vc.sigLookups.Add(1)
	k := SigKey{Repo: m.Repo, KeyID: keyID, Version: m.Version, Sum: sha256.Sum256(canon)}
	vc.mu.RLock()
	valid, ok := vc.sigs[k]
	vc.mu.RUnlock()
	if ok {
		return valid
	}
	vc.mu.Lock()
	if valid, ok = vc.sigs[k]; !ok {
		// Double-checked under the write lock: exactly one worker pays
		// the ed25519 verification per unique key, which is what keeps
		// Stats deterministic at any worker count.
		vc.sigVerifies.Add(1)
		valid = ed25519.Verify(key, canon, m.Sig)
		vc.sigs[k] = valid
	}
	vc.mu.Unlock()
	return valid
}

// attest returns the cached cross-check of b's director targets against
// its image targets and payloads, building it on first sight.
func (vc *VerifyCache) attest(b *Bundle) *attestation {
	vc.attestLookups.Add(1)
	vc.mu.RLock()
	a, ok := vc.attests[b]
	vc.mu.RUnlock()
	if ok {
		return a
	}
	vc.mu.Lock()
	if a, ok = vc.attests[b]; !ok {
		vc.attestBuilds.Add(1)
		a = buildAttestation(b)
		vc.attests[b] = a
	}
	vc.mu.Unlock()
	return a
}

// buildAttestation performs the vehicle-independent half of apply: every
// director target must be attested byte-for-byte by the image repository
// and backed by a payload matching its length and hash.
func buildAttestation(b *Bundle) *attestation {
	imageByName := make(map[string]Target, len(b.Image.Targets))
	for _, t := range b.Image.Targets {
		imageByName[t.Name] = t
	}
	a := &attestation{plan: make([]Target, 0, len(b.Director.Targets))}
	for _, t := range b.Director.Targets {
		it, ok := imageByName[t.Name]
		if !ok || it != t {
			a.err = fmt.Errorf("%w: target %q", ErrMixAndMatch, t.Name)
			return a
		}
		payload, ok := b.Payloads[t.Name]
		if !ok {
			a.err = fmt.Errorf("%w: payload %q", ErrIncomplete, t.Name)
			return a
		}
		if len(payload) != t.Length || HashPayload(payload) != t.Hash {
			a.err = fmt.Errorf("%w: target %q", ErrHashMismatch, t.Name)
			return a
		}
		a.plan = append(a.plan, t)
	}
	return a
}

// ApplyCached verifies a bundle like Apply but routes the expensive
// steps through the cache and applies the campaign-mode semantics a
// fleet rollout needs:
//
//   - director metadata may be addressed to the client's Group (one
//     signed statement per model line instead of per vehicle);
//   - metadata whose version counters exactly match the client's current
//     state answers ErrNoUpdate after signature and freshness checks —
//     the vehicle is up to date, nothing installs, nothing is rejected;
//   - targets already at their installed version are skipped rather than
//     treated as rollback, so vehicles joining a campaign mid-flight at
//     a mix of older versions (version skew) converge instead of
//     erroring.
//
// On the memoized path (every verification the cache already holds) a
// successful ApplyCached performs no allocation. A nil cache falls back
// to Apply.
func (c *Client) ApplyCached(b *Bundle, now sim.Time, vc *VerifyCache) error {
	if vc == nil {
		return c.Apply(b, now)
	}
	if c.obsTr != nil {
		c.obsTr.Instant(now, c.obsSub, c.obsVerify, 0, 0, 0)
	}
	err := c.applyCached(b, now, vc)
	switch {
	case err == nil:
		c.Installed.Inc()
		if c.obsTr != nil {
			c.obsTr.Instant(now, c.obsSub, c.obsInstall, c.obsTr.Label(c.VehicleID), int64(len(b.Director.Targets)), 0)
		}
	case err == ErrNoUpdate:
		c.UpToDate.Inc()
	default:
		c.Rejected.Inc()
		if c.obsTr != nil {
			c.obsTr.Instant(now, c.obsSub, c.obsReject, c.obsTr.Label(errClass(err)), 0, 0)
		}
	}
	return err
}

func (c *Client) applyCached(b *Bundle, now sim.Time, vc *VerifyCache) error {
	if b.Director == nil || b.Image == nil {
		return ErrIncomplete
	}
	// Signatures first (memoized), then per-vehicle freshness: the
	// canonical bytes render into the client's scratch, so a warm cache
	// sees no allocation here.
	if !vc.sigValid(b.Director, c.directorKey, c.directorKeyID, b.Director.canonicalInto(&c.scratch)) {
		return fmt.Errorf("%w: repo %s", ErrBadSignature, b.Director.Repo)
	}
	if !vc.sigValid(b.Image, c.imageKey, c.imageKeyID, b.Image.canonicalInto(&c.scratch)) {
		return fmt.Errorf("%w: repo %s", ErrBadSignature, b.Image.Repo)
	}
	if err := checkFresh(b.Director, now); err != nil {
		return err
	}
	if err := checkFresh(b.Image, now); err != nil {
		return err
	}
	if b.Director.VehicleID != c.VehicleID && (c.Group == "" || b.Director.VehicleID != c.Group) {
		return fmt.Errorf("%w: %q", ErrWrongVehicle, b.Director.VehicleID)
	}
	// Version counters. Exactly-current metadata on both repositories is
	// the freshness re-check a polling vehicle performs every campaign
	// wave; anything at or below the high-water mark otherwise is replay.
	if b.Director.Version == c.lastDirectorVersion && b.Image.Version == c.lastImageVersion {
		return ErrNoUpdate
	}
	if b.Director.Version <= c.lastDirectorVersion {
		return fmt.Errorf("%w: repo %s version %d <= %d", ErrRollback, b.Director.Repo, b.Director.Version, c.lastDirectorVersion)
	}
	if b.Image.Version <= c.lastImageVersion {
		return fmt.Errorf("%w: repo %s version %d <= %d", ErrRollback, b.Image.Repo, b.Image.Version, c.lastImageVersion)
	}

	a := vc.attest(b)
	if a.err != nil {
		return a.err
	}
	c.plan = c.plan[:0]
	for i := range a.plan {
		t := &a.plan[i]
		ecu, ok := c.ecus[t.HWID]
		if !ok {
			return fmt.Errorf("%w: %q", ErrWrongHW, t.HWID)
		}
		if t.Version < ecu.InstalledVersion {
			return fmt.Errorf("%w: target %q version %d < installed %d",
				ErrRollback, t.Name, t.Version, ecu.InstalledVersion)
		}
		if t.Version == ecu.InstalledVersion {
			continue // skew tolerance: already at the campaign target
		}
		c.plan = append(c.plan, pendingInstall{ecu: ecu, t: *t})
	}
	for _, p := range c.plan {
		p.ecu.InstalledName = p.t.Name
		p.ecu.InstalledVersion = p.t.Version
	}
	c.lastDirectorVersion = b.Director.Version
	c.lastImageVersion = b.Image.Version
	return nil
}
