// Package workload generates the evaluation inputs: realistic periodic
// CAN communication matrices (the traffic the IVN and IDS experiments
// run on) and drive cycles (the highway/city phases behind the paper's
// dynamic trade-off example in Section 5: "a car driving on a desolate,
// straight highway requires less data analytics ... than when driving in
// a busy city").
package workload

import (
	"math"
	"sort"
	"strconv"
	"unicode/utf8"

	"autosec/internal/can"
	"autosec/internal/sim"
)

// MessageSpec describes one periodic CAN message.
type MessageSpec struct {
	ID     can.ID
	Period sim.Duration
	Size   int
	// Counter embeds a rolling counter in byte 0 (typical of real
	// matrices; gives the entropy detector a signal to learn).
	Counter bool
	// Sender names the transmitting ECU.
	Sender string
}

// PowertrainMatrix returns a production-shaped powertrain communication
// matrix: high-rate torque/speed traffic plus slower status messages.
func PowertrainMatrix() []MessageSpec {
	return []MessageSpec{
		{ID: 0x0C0, Period: 10 * sim.Millisecond, Size: 8, Counter: true, Sender: "engine"},
		{ID: 0x0D0, Period: 10 * sim.Millisecond, Size: 8, Counter: true, Sender: "transmission"},
		{ID: 0x100, Period: 20 * sim.Millisecond, Size: 8, Counter: true, Sender: "engine"},
		{ID: 0x120, Period: 20 * sim.Millisecond, Size: 6, Counter: true, Sender: "abs"},
		{ID: 0x1A0, Period: 50 * sim.Millisecond, Size: 8, Counter: true, Sender: "abs"},
		{ID: 0x1C0, Period: 50 * sim.Millisecond, Size: 4, Counter: false, Sender: "steering"},
		{ID: 0x260, Period: 100 * sim.Millisecond, Size: 8, Counter: true, Sender: "engine"},
		{ID: 0x2A0, Period: 100 * sim.Millisecond, Size: 8, Counter: false, Sender: "transmission"},
		{ID: 0x320, Period: 200 * sim.Millisecond, Size: 5, Counter: false, Sender: "cluster"},
		{ID: 0x3E0, Period: 500 * sim.Millisecond, Size: 8, Counter: false, Sender: "engine"},
		{ID: 0x4A0, Period: 1000 * sim.Millisecond, Size: 8, Counter: false, Sender: "diagnostics"},
		{ID: 0x520, Period: 1000 * sim.Millisecond, Size: 2, Counter: false, Sender: "cluster"},
	}
}

// BodyMatrix returns a body/comfort domain matrix (slower, smaller).
func BodyMatrix() []MessageSpec {
	return []MessageSpec{
		{ID: 0x210, Period: 50 * sim.Millisecond, Size: 4, Counter: true, Sender: "bcm"},
		{ID: 0x2D0, Period: 100 * sim.Millisecond, Size: 8, Counter: false, Sender: "doors"},
		{ID: 0x330, Period: 200 * sim.Millisecond, Size: 3, Counter: false, Sender: "climate"},
		{ID: 0x410, Period: 500 * sim.Millisecond, Size: 6, Counter: false, Sender: "lights"},
		{ID: 0x590, Period: 1000 * sim.Millisecond, Size: 8, Counter: false, Sender: "bcm"},
	}
}

// payloadFor builds a deterministic payload for the spec at sequence i.
func payloadFor(s MessageSpec, i int, rng *sim.Stream) []byte {
	b := make([]byte, s.Size)
	for j := range b {
		// Slowly varying signal bytes: sensor-like ramps with small noise.
		b[j] = byte(100 + 20*math.Sin(float64(i)/50+float64(j)))
	}
	if s.Counter && s.Size > 0 {
		b[0] = byte(i)
	}
	_ = rng
	return b
}

// StartSenders attaches one controller per unique sender to the bus and
// schedules every message in the matrix with the given start-phase jitter.
// It returns the controllers by sender name and a stop function.
func StartSenders(k *sim.Kernel, bus *can.Bus, specs []MessageSpec, jitterFrac float64) (map[string]*can.Controller, func()) {
	ctrls := make(map[string]*can.Controller)
	var stops []func()
	for _, s := range specs {
		s := s
		ctrl, ok := ctrls[s.Sender]
		if !ok {
			ctrl = can.NewController(s.Sender)
			bus.Attach(ctrl)
			ctrls[s.Sender] = ctrl
		}
		seq := 0
		js := k.Stream("workload." + s.Sender + "." + streamSuffix(s.ID))
		stopped := false
		var schedule func()
		schedule = func() {
			if stopped {
				return
			}
			_ = ctrl.Send(can.Frame{ID: s.ID, Data: payloadFor(s, seq, js)}, nil)
			seq++
			next := s.Period
			if jitterFrac > 0 {
				next = js.Jitter(s.Period, jitterFrac)
			}
			k.After(next, schedule)
		}
		k.After(js.Duration(0, s.Period), schedule)
		stops = append(stops, func() { stopped = true })
	}
	return ctrls, func() {
		for _, fn := range stops {
			fn()
		}
	}
}

// SyntheticTrace builds a trace of the matrix directly (no bus), useful
// for fast IDS training corpora. Arbitration effects are ignored; frame
// times use ideal periods with the given jitter.
func SyntheticTrace(specs []MessageSpec, dur sim.Duration, seed uint64, jitterFrac float64) *can.Trace {
	tr := &can.Trace{}
	for _, s := range specs {
		rng := sim.NewStream(seed, "trace."+s.Sender+streamSuffix(s.ID))
		at := rng.Duration(0, s.Period)
		i := 0
		for at < dur {
			tr.Records = append(tr.Records, can.Record{
				At:     at,
				Frame:  can.Frame{ID: s.ID, Data: payloadFor(s, i, rng)},
				Sender: s.Sender,
			})
			step := s.Period
			if jitterFrac > 0 {
				step = rng.Jitter(s.Period, jitterFrac)
			}
			at += step
			i++
		}
	}
	sortTrace(tr)
	return tr
}

// streamSuffix derives the per-message RNG stream-name suffix from a CAN
// ID. IDs whose naive rune encoding is lossy (the surrogate range
// 0xD800–0xDFFF, anything past the Unicode max, and U+FFFD itself, which
// is indistinguishable from a failed conversion) would all collapse to
// the replacement character and share one jitter stream; those format as
// hex instead. Valid single-rune IDs keep the historical encoding so
// existing seeds reproduce byte-identical traffic.
func streamSuffix(id can.ID) string {
	if r := rune(id); utf8.ValidRune(r) && r != utf8.RuneError {
		return string(r)
	}
	return "0x" + strconv.FormatUint(uint64(id), 16)
}

// sortTrace orders records by timestamp with a stable (At, then ID, then
// insertion order) tiebreak, so equal-timestamp records from different
// senders always serialize identically.
func sortTrace(tr *can.Trace) {
	sort.SliceStable(tr.Records, func(i, j int) bool {
		a, b := &tr.Records[i], &tr.Records[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Frame.ID < b.Frame.ID
	})
}

// Phase is one segment of a drive cycle.
type Phase struct {
	Name string
	// Until is the phase's end time within the cycle.
	Until sim.Time
	// PedestrianDensity in [0,1] drives the analytics requirement.
	PedestrianDensity float64
	// ThreatLevel in [0,1] models the ambient attack likelihood (dense
	// RF environment, parked-and-exposed, etc.).
	ThreatLevel float64
	// SpeedMS is the typical vehicle speed.
	SpeedMS float64
}

// Cycle is a sequence of phases; time past the last phase wraps around.
type Cycle struct {
	Phases []Phase
}

// Length is the cycle's total duration.
func (c Cycle) Length() sim.Time {
	if len(c.Phases) == 0 {
		return 0
	}
	return c.Phases[len(c.Phases)-1].Until
}

// At returns the active phase at time t (wrapping).
func (c Cycle) At(t sim.Time) Phase {
	if len(c.Phases) == 0 {
		return Phase{}
	}
	if l := c.Length(); l > 0 {
		t = t % l
	}
	for _, p := range c.Phases {
		if t < p.Until {
			return p
		}
	}
	return c.Phases[len(c.Phases)-1]
}

// HighwayCycle is a long, empty-road cruise.
func HighwayCycle() Cycle {
	return Cycle{Phases: []Phase{
		{Name: "highway", Until: 10 * sim.Minute, PedestrianDensity: 0.02, ThreatLevel: 0.1, SpeedMS: 33},
	}}
}

// CityCycle is dense urban driving.
func CityCycle() Cycle {
	return Cycle{Phases: []Phase{
		{Name: "city", Until: 10 * sim.Minute, PedestrianDensity: 0.8, ThreatLevel: 0.6, SpeedMS: 10},
	}}
}

// CommuteCycle alternates highway and city segments — the scenario behind
// the paper's dynamic trade-off discussion.
func CommuteCycle() Cycle {
	return Cycle{Phases: []Phase{
		{Name: "residential", Until: 2 * sim.Minute, PedestrianDensity: 0.5, ThreatLevel: 0.4, SpeedMS: 12},
		{Name: "highway", Until: 8 * sim.Minute, PedestrianDensity: 0.02, ThreatLevel: 0.1, SpeedMS: 33},
		{Name: "downtown", Until: 12 * sim.Minute, PedestrianDensity: 0.9, ThreatLevel: 0.7, SpeedMS: 8},
	}}
}
