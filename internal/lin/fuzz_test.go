package lin

import (
	"bytes"
	"testing"

	"autosec/internal/netif"
)

// FuzzPIDRoundTrip drives the protected-identifier codec with arbitrary
// header bytes: anything CheckPID accepts must regenerate byte-identically
// through PID, and every single-bit corruption of a valid PID must be
// rejected — the error-detection property the parity bits exist for.
func FuzzPIDRoundTrip(f *testing.F) {
	f.Add(byte(0x00))
	f.Add(byte(0x3F))
	f.Add(byte(0x80))
	f.Add(byte(0xF1))
	f.Fuzz(func(t *testing.T, pid byte) {
		id, err := CheckPID(pid)
		if err != nil {
			return
		}
		if id != FrameID(pid&0x3F) {
			t.Fatalf("CheckPID(%#x) extracted id %#x", pid, id)
		}
		back, err := PID(id)
		if err != nil {
			t.Fatalf("PID(%#x) rejected an id CheckPID produced: %v", id, err)
		}
		if back != pid {
			t.Fatalf("PID(%#x) = %#x, want %#x", id, back, pid)
		}
		for bit := 0; bit < 8; bit++ {
			if _, err := CheckPID(pid ^ 1<<bit); err == nil {
				t.Fatalf("single-bit corruption %#x of PID %#x not detected", pid^1<<bit, pid)
			}
		}
	})
}

// FuzzChecksum asserts the LIN checksum's single-bit error detection for
// both checksum models: a correct frame verifies, and flipping any one
// bit of the data or of the checksum byte itself must fail verification
// (2^k mod 255 is never zero, so the inverted mod-255 sum catches every
// single-bit error).
func FuzzChecksum(f *testing.F) {
	f.Add(true, byte(0x42), []byte{0x01, 0x02, 0x03, 0x04})
	f.Add(false, byte(0x00), []byte{0xFF})
	f.Add(true, byte(0xF1), []byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, enhanced bool, pid byte, data []byte) {
		if len(data) == 0 || len(data) > 8 {
			return
		}
		model := Classic
		if enhanced {
			model = Enhanced
		}
		cs := Checksum(model, pid, data)
		if !VerifyChecksum(model, pid, data, cs) {
			t.Fatalf("fresh checksum %#x does not verify", cs)
		}
		for bit := 0; bit < 8; bit++ {
			if VerifyChecksum(model, pid, data, cs^1<<bit) {
				t.Fatalf("corrupted checksum %#x accepted", cs^1<<bit)
			}
		}
		for i := range data {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), data...)
				mut[i] ^= 1 << bit
				if VerifyChecksum(model, pid, mut, cs) {
					t.Fatalf("single-bit data corruption at byte %d bit %d not detected", i, bit)
				}
			}
		}
	})
}

// FuzzNetifConversion hammers the fabric adapter's frame validation:
// whatever FrameFromNetif accepts must convert back losslessly, and the
// accepted space must respect the LIN frame invariants (6-bit ID, 1..8
// data bytes).
func FuzzNetifConversion(f *testing.F) {
	f.Add(uint32(0x10), []byte{0xAB, 0xCD})
	f.Add(uint32(0x3F), []byte{0x00})
	f.Add(uint32(0x40), []byte{0x01})
	f.Add(uint32(0), []byte{})
	f.Fuzz(func(t *testing.T, id uint32, data []byte) {
		nf := netif.Frame{Medium: netif.LIN, ID: id, Priority: id, Sender: "fuzz", Payload: data}
		lf, err := FrameFromNetif(&nf)
		if err != nil {
			return
		}
		if lf.ID > MaxFrameID || len(lf.Data) == 0 || len(lf.Data) > 8 {
			t.Fatalf("FrameFromNetif accepted invalid frame: id=%#x len=%d", lf.ID, len(lf.Data))
		}
		var back netif.Frame
		FrameToNetif(&lf, &back)
		if back.ID != id || back.Sender != "fuzz" || !bytes.Equal(back.Payload, data) {
			t.Fatalf("round-trip mismatch: %+v vs id=%#x data=% X", back, id, data)
		}
	})
}
