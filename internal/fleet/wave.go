package fleet

import (
	"context"
	"fmt"

	"autosec/internal/core"
	"autosec/internal/obs"
)

// Wave is one contiguous index range [Lo, Hi) of a campaign's staged
// rollout. Waves partition the population in index order (canary first,
// full-fleet last); because every per-vehicle decision in the drive loop
// keys on the absolute vehicle index, driving the same population as one
// wave or as many is behaviourally identical — wave boundaries change
// *when* a vehicle is driven, never *what* it does.
type Wave struct {
	Lo, Hi int
}

// Size returns the number of vehicles in the wave.
func (w Wave) Size() int { return w.Hi - w.Lo }

// String renders the wave as its half-open range.
func (w Wave) String() string { return fmt.Sprintf("[%d,%d)", w.Lo, w.Hi) }

// StageWaves splits a population of n into a staged rollout plan:
// a canary wave, then rings that grow by the given factor, then the
// remainder as the full wave. canary and factor are clamped to sane
// minimums (1 vehicle, 2x). StageWaves(1000, 10, 4) → [0,10) [10,50)
// [50,210) [210,850) [850,1000).
func StageWaves(n, canary, factor int) []Wave {
	if n <= 0 {
		return nil
	}
	if canary < 1 {
		canary = 1
	}
	if factor < 2 {
		factor = 2
	}
	var waves []Wave
	lo, size := 0, canary
	for lo < n {
		hi := lo + size
		if hi > n {
			hi = n
		}
		waves = append(waves, Wave{Lo: lo, Hi: hi})
		lo = hi
		size *= factor
	}
	return waves
}

// DriveWave runs fn over one wave of d's population and returns the
// wave's results indexed by idx-w.Lo. Sharding, pooling and the error
// contract match Drive; vehicle seeds come from the absolute index, so
// the same vehicle behaves identically whatever wave plan contains it.
func DriveWave[T any](ctx context.Context, d Driver, w Wave, fn func(idx int, v *core.Vehicle) (T, error)) ([]T, error) {
	results, _, err := DriveWaveObs(ctx, d, ObsOptions{}, w, func(idx int, v *core.Vehicle, _ *obs.Registry) (T, error) {
		return fn(idx, v)
	})
	return results, err
}

// DriveWaveObs runs fn over one wave with the observability plane
// attached, merging that wave's per-vehicle registries at the wave
// barrier. Unlike DriveObs, fn receives each vehicle's live registry
// (nil unless o.Metrics) so campaign code can count scenario-level
// outcomes (installs, rejections, blast radius) as mergeable instruments
// folded in vehicle-index order — the per-wave deterministic merge.
// Wave-level aggregation across waves is the caller's job (fold each
// wave's Registry into a campaign registry with Merge).
func DriveWaveObs[T any](ctx context.Context, d Driver, o ObsOptions, w Wave, fn func(idx int, v *core.Vehicle, reg *obs.Registry) (T, error)) ([]T, *ObsResult, error) {
	if d.N <= 0 {
		return nil, nil, fmt.Errorf("fleet: population must be positive, got %d", d.N)
	}
	if w.Lo < 0 || w.Hi > d.N || w.Lo >= w.Hi {
		return nil, nil, fmt.Errorf("fleet: wave %v out of range for population %d", w, d.N)
	}
	return driveRangeObs(ctx, d, o, w.Lo, w.Hi, fn)
}
