package experiments

import (
	"context"
	"fmt"
	"strings"

	"autosec/internal/can"
	"autosec/internal/core"
	"autosec/internal/fleet"
	"autosec/internal/gateway"
	"autosec/internal/netif"
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// E20 sweeps the fleet observability plane over observability modes ×
// fleet sizes: the same two-zone fleet driven with observability off,
// with merged metrics, and with metrics plus the sampled flight
// recorder. Every column is derived from deterministic artifacts — the
// index-order-merged registry, the trace selection, and per-vehicle
// audit verdicts — so the table is byte-identical at any worker count
// (CI diffs -fleetpar 1 against -fleetpar 8). Wall-clock overhead is
// deliberately absent: it is machine-dependent and lives in
// BenchmarkFleetVehiclesPerSec / BenchmarkFleetVehiclesPerSecObs and the
// benchreport -compare gate instead.
func E20Observability(seed uint64) *Table {
	return E20ObservabilityWith(seed, []int{1_000, 10_000}, 0)
}

// e20TraceRate samples ~2% of vehicles into the flight recorder; audit
// incidents (the quarantine reflex firing) are always captured on top.
const e20TraceRate = 0.02

// E20ObservabilityWith runs the sweep over custom fleet sizes and a
// fixed worker count (0 means GOMAXPROCS). benchreport's -obsfleet flag
// feeds custom sweeps through here; the golden table uses the defaults
// {1e3, 1e4} at default parallelism — legal precisely because the plane
// is worker-count invariant.
func E20ObservabilityWith(seed uint64, fleetSizes []int, workers int) *Table {
	return E20ObservabilityObserved(seed, fleetSizes, workers, nil)
}

// E20ObservabilityObserved additionally attaches runtime telemetry: when
// observe is non-nil it is called once per drive of the sweep grid and
// the returned observer receives that drive's progress callbacks.
// Observers see only wall-clock telemetry, so the table is identical
// with or without one (benchreport's -progress relies on this).
func E20ObservabilityObserved(seed uint64, fleetSizes []int, workers int, observe func(fleetSize int, mode string) fleet.DriveObserver) *Table {
	t := &Table{
		ID:    "E20",
		Title: "Fleet observability plane: merged metrics and sampled traces (§7)",
		Claim: "a fleet-wide metrics registry merged in vehicle-index order and a seed-hash-sampled flight recorder yield byte-identical observability artifacts at any worker count",
		Columns: []string{"fleet", "obs mode", "metric keys",
			"frames ok", "backbone deliveries", "audit appends",
			"incident vehicles", "traces kept", "incident traces"},
	}
	cfg := core.Config{VIN: "E20-OBS", Seed: seed, Zonal: &core.ZonalConfig{
		Zones:        2,
		LocalDomains: []core.DomainSpec{{Name: "body", Kind: netif.CAN}},
	}}
	modes := []struct {
		name string
		opts fleet.ObsOptions
	}{
		{"off", fleet.ObsOptions{}},
		{"metrics", fleet.ObsOptions{Metrics: true}},
		{"metrics+traces", fleet.ObsOptions{Metrics: true, TraceRate: e20TraceRate}},
	}
	for _, n := range fleetSizes {
		for _, m := range modes {
			opts := m.opts
			if observe != nil {
				opts.Observer = observe(n, m.name)
			}
			d := fleet.Driver{Cfg: cfg, N: n, Workers: workers}
			flags, res, err := fleet.DriveObs(context.Background(), d, opts,
				func(idx int, v *core.Vehicle) (int, error) {
					return e20Vehicle(v, idx), nil
				})
			if err != nil {
				panic(fmt.Sprintf("E20: fleet drive (n=%d, mode=%s): %v", n, m.name, err))
			}
			incidentVehicles := 0
			for _, f := range flags {
				incidentVehicles += f
			}
			keys, framesOK, deliveries, appends := 0, 0.0, 0.0, 0.0
			if m.opts.Metrics {
				snap := res.Registry.Snapshot()
				keys = len(snap)
				for _, mt := range snap {
					switch {
					case strings.HasSuffix(mt.Key, "/frames_ok"):
						framesOK += mt.Value
					case mt.Key == "zonal/backbone_deliveries":
						deliveries = mt.Value
					case mt.Key == "audit/appends":
						appends = mt.Value
					}
				}
			}
			incidentTraces := 0
			for _, tr := range res.Traces {
				if tr.Interesting {
					incidentTraces++
				}
			}
			t.AddRow(n, m.name, keys,
				obs.FormatValue(framesOK), obs.FormatValue(deliveries), obs.FormatValue(appends),
				incidentVehicles, len(res.Traces), incidentTraces)
		}
	}
	return t
}

// e20Vehicle is one vehicle's 4ms scenario, shaped so the flight
// recorder's "interesting" predicate has real positives: a chassis ECU
// streams status frames across the backbone into infotainment, and every
// fifth vehicle's reflex quarantines the infotainment zone at t=2ms —
// from then on each backbone arrival at that zone is audited as a
// quarantine drop, which SecurityIncidents counts. Traffic never crosses
// the powertrain IDS tap, so the stock untrained detectors stay silent
// and incidents are exactly the quarantined vehicles. Returns 1 when the
// vehicle recorded incidents, 0 otherwise.
func e20Vehicle(v *core.Vehicle, idx int) int {
	k := v.Kernel
	v.Zonal.SetRules([]*gateway.Rule{{
		Name: "chassis-status", From: core.DomainChassis, To: []string{core.DomainInfotainment},
		IDLo: 0, IDHi: uint32(can.MaxStandardID), Action: gateway.Allow,
	}})

	tx := can.NewController("chassis-ecu")
	v.Buses[core.DomainChassis].Attach(tx)
	rng := k.Stream("e20-phase")
	start := rng.Duration(100*sim.Microsecond, 400*sim.Microsecond)
	k.Every(start, 500*sim.Microsecond, func() {
		_ = tx.Send(can.Frame{ID: 0x155, Data: []byte{0x53, 0x54}}, nil)
	})

	if idx%5 == 0 {
		k.At(2*sim.Millisecond, func() {
			_ = v.Zonal.QuarantineZoneOf(core.DomainInfotainment)
		})
	}

	if err := k.RunUntil(4 * sim.Millisecond); err != nil {
		panic(fmt.Sprintf("E20: vehicle %d: %v", idx, err))
	}
	if v.SecurityIncidents() > 0 {
		return 1
	}
	return 0
}
