// Package ethernet simulates a switched automotive Ethernet network: a
// store-and-forward switch with MAC learning, 802.1Q VLAN separation and
// per-port ingress policing (token bucket).
//
// In the paper's Secure Networks layer, automotive Ethernet is the
// next-generation IVN that is "supposed to provide more intrusion
// detection capabilities and stricter separation" than CAN/LIN/FlexRay.
// The simulation makes those two properties concrete: VLANs provide the
// separation, and per-port policing plus the switch's observation hooks
// provide the enforcement points.
package ethernet

import (
	"errors"
	"fmt"
	"math"

	"autosec/internal/sim"
)

// MAC is a 48-bit hardware address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}

// String renders the address in colon notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// LocalMAC derives a locally-administered MAC from a small integer,
// convenient for tests and scenario builders.
func LocalMAC(n uint32) MAC {
	return MAC{0x02, 0x00, byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}

// Frame is an Ethernet frame with an 802.1Q VLAN tag.
type Frame struct {
	Src, Dst  MAC
	VLAN      uint16 // 1..4094; 0 means untagged (mapped to the port's PVID)
	EtherType uint16
	Payload   []byte
}

// WireBytes returns the on-wire size including header, VLAN tag, FCS,
// preamble and IFG, with minimum-frame padding applied.
func (f *Frame) WireBytes() int {
	n := len(f.Payload)
	if n < 46 {
		n = 46
	}
	// 14 header + 4 VLAN + payload + 4 FCS + 8 preamble + 12 IFG.
	return 14 + 4 + n + 4 + 8 + 12
}

// Validate checks frame invariants.
var ErrFrameTooBig = errors.New("ethernet: payload exceeds 1500 bytes")

func (f *Frame) Validate() error {
	if len(f.Payload) > 1500 {
		return fmt.Errorf("%w: %d", ErrFrameTooBig, len(f.Payload))
	}
	if f.VLAN > 4094 {
		return errors.New("ethernet: VLAN id out of range")
	}
	return nil
}

// Clone deep-copies the frame.
func (f *Frame) Clone() Frame {
	c := *f
	c.Payload = append([]byte(nil), f.Payload...)
	return c
}

// ReceiveFunc handles a frame arriving at a host.
type ReceiveFunc func(at sim.Time, f *Frame)

// Host is an end node attached to one switch port.
type Host struct {
	Name     string
	Addr     MAC
	port     *Port
	handlers []ReceiveFunc

	FramesSent     sim.Counter
	FramesReceived sim.Counter
}

// NewHost creates a detached host.
func NewHost(name string, addr MAC) *Host {
	return &Host{Name: name, Addr: addr}
}

// OnReceive registers a delivery handler.
func (h *Host) OnReceive(fn ReceiveFunc) { h.handlers = append(h.handlers, fn) }

// Send transmits a frame out of the host's port. The source address is
// forced to the host's own MAC unless Spoof is used.
func (h *Host) Send(f Frame) error {
	f.Src = h.Addr
	return h.send(f)
}

// Spoof transmits a frame with an arbitrary source address — the attack
// primitive for MAC spoofing scenarios.
func (h *Host) Spoof(f Frame) error { return h.send(f) }

func (h *Host) send(f Frame) error {
	if h.port == nil {
		return errors.New("ethernet: host not attached")
	}
	if err := f.Validate(); err != nil {
		return err
	}
	h.FramesSent.Inc()
	return h.port.ingress(f)
}

func (h *Host) deliver(at sim.Time, f *Frame) {
	h.FramesReceived.Inc()
	for _, fn := range h.handlers {
		fn(at, f)
	}
}

// Policer is a token-bucket ingress rate limiter.
type Policer struct {
	// RateBps is the sustained allowed rate in bytes per second.
	RateBps float64
	// BurstBytes is the bucket depth.
	BurstBytes float64

	tokens float64
	last   sim.Time
	inited bool
}

// Allow consumes n bytes of credit at virtual time now; it reports false
// (and drops nothing from the bucket) when credit is insufficient. The
// bucket starts full.
func (p *Policer) Allow(now sim.Time, n int) bool {
	if p.RateBps <= 0 {
		return true // unconfigured policer admits everything
	}
	if !p.inited {
		p.inited = true
		p.tokens = p.BurstBytes
		p.last = now
	}
	dt := (now - p.last).Seconds()
	p.last = now
	p.tokens = math.Min(p.BurstBytes, p.tokens+dt*p.RateBps)
	if p.tokens < float64(n) {
		return false
	}
	p.tokens -= float64(n)
	return true
}

// Port is one switch port.
type Port struct {
	ID   int
	sw   *Switch
	host *Host
	// PVID is the VLAN assigned to untagged ingress frames.
	PVID uint16
	// Allowed is the set of VLANs this port may carry; empty means PVID only.
	Allowed map[uint16]bool
	// Police is the optional ingress policer.
	Police *Policer
	// LinkBps is the port speed in bits per second (default 100 Mbit/s).
	LinkBps int64

	Dropped sim.Counter
}

func (p *Port) carries(vlan uint16) bool {
	if len(p.Allowed) == 0 {
		return vlan == p.PVID
	}
	return p.Allowed[vlan]
}

func (p *Port) ingress(f Frame) error {
	now := p.sw.kernel.Now()
	if f.VLAN == 0 {
		f.VLAN = p.PVID
	}
	if !p.carries(f.VLAN) {
		p.Dropped.Inc()
		p.sw.VLANViolations.Inc()
		return nil // silently dropped, as a real switch would
	}
	if p.Police != nil && !p.Police.Allow(now, f.WireBytes()) {
		p.Dropped.Inc()
		p.sw.Policed.Inc()
		return nil
	}
	// Store-and-forward: serialize on the ingress link, then switch.
	serial := sim.Duration(float64(f.WireBytes()*8) / float64(p.LinkBps) * 1e9)
	p.sw.kernel.After(serial+p.sw.Latency, func() {
		p.sw.forward(p, f)
	})
	return nil
}

// Switch is a learning, VLAN-aware Ethernet switch.
type Switch struct {
	Name    string
	kernel  *sim.Kernel
	ports   []*Port
	table   map[macVLAN]*Port
	Latency sim.Duration // fixed processing latency

	FramesForwarded sim.Counter
	FramesFlooded   sim.Counter
	VLANViolations  sim.Counter
	Policed         sim.Counter

	observers []func(at sim.Time, f *Frame, in *Port)

	// base is the post-construction snapshot recorded by MarkBaseline for
	// pooled reuse; see ResetToBaseline.
	base swBaseline
}

type macVLAN struct {
	mac  MAC
	vlan uint16
}

// NewSwitch creates a switch with the given fixed processing latency.
func NewSwitch(k *sim.Kernel, name string, latency sim.Duration) *Switch {
	return &Switch{Name: name, kernel: k, table: make(map[macVLAN]*Port), Latency: latency}
}

// Connect attaches a host on a new port in the given VLAN. Returns the
// port for further configuration (policer, trunk VLANs).
func (s *Switch) Connect(h *Host, pvid uint16) *Port {
	p := &Port{ID: len(s.ports), sw: s, host: h, PVID: pvid, LinkBps: 100_000_000}
	h.port = p
	s.ports = append(s.ports, p)
	return p
}

// Observe registers a monitor-port style observer of all frames entering
// the switching fabric.
func (s *Switch) Observe(fn func(at sim.Time, f *Frame, in *Port)) {
	s.observers = append(s.observers, fn)
}

func (s *Switch) forward(in *Port, f Frame) {
	now := s.kernel.Now()
	for _, fn := range s.observers {
		fn(now, &f, in)
	}
	// Learn the source.
	s.table[macVLAN{f.Src, f.VLAN}] = in

	deliverTo := func(p *Port) {
		if p == in || p.host == nil || !p.carries(f.VLAN) {
			return
		}
		serial := sim.Duration(float64(f.WireBytes()*8) / float64(p.LinkBps) * 1e9)
		cp := f.Clone()
		s.kernel.After(serial, func() { p.host.deliver(s.kernel.Now(), &cp) })
	}

	if !f.Dst.IsBroadcast() {
		if out, ok := s.table[macVLAN{f.Dst, f.VLAN}]; ok {
			if out != in {
				s.FramesForwarded.Inc()
				deliverTo(out)
			}
			return
		}
	}
	// Flood within the VLAN.
	s.FramesFlooded.Inc()
	for _, p := range s.ports {
		deliverTo(p)
	}
}
