package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiment tables under testdata/")

// TestGoldenTables diffs every experiment's seed-1 table against the
// committed golden output. A behavioural change to any subsystem that
// feeds an experiment shows up here as a readable table diff; regenerate
// intentionally with:
//
//	go test ./internal/experiments -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite; skipped in -short mode")
	}
	for _, tbl := range All(1) {
		tbl := tbl
		t.Run(tbl.ID, func(t *testing.T) {
			path := filepath.Join("testdata", tbl.ID+".golden")
			got := tbl.String()
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from its golden table.\n--- got\n%s\n--- want\n%s\n(if intentional, regenerate with -update)",
					tbl.ID, got, want)
			}
		})
	}
}
