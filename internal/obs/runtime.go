package obs

import "runtime/metrics"

// RuntimeMetrics samples the Go runtime's own metrics and returns the
// memory-trajectory trio benchreport records next to timing numbers:
//
//	heap_bytes        live heap objects, bytes
//	total_alloc_bytes cumulative bytes allocated (monotonic)
//	gc_cycles         completed GC cycles (monotonic)
//
// Keys are stable strings so BENCH_*.json files diff cleanly across
// captures.
func RuntimeMetrics() map[string]uint64 {
	samples := []metrics.Sample{
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/cycles/total:gc-cycles"},
	}
	metrics.Read(samples)
	out := make(map[string]uint64, len(samples))
	names := []string{"heap_bytes", "total_alloc_bytes", "gc_cycles"}
	for i, s := range samples {
		if s.Value.Kind() == metrics.KindUint64 {
			out[names[i]] = s.Value.Uint64()
		}
	}
	return out
}
