package can

import (
	"strings"
	"testing"
	"testing/quick"
)

// Robustness: ParseTrace must reject or accept arbitrary text without
// panicking, and anything it accepts must re-serialize.
func TestParseTraceSurvivesArbitraryInput(t *testing.T) {
	f := func(input string) bool {
		tr, err := ParseTrace(strings.NewReader(input))
		if err != nil {
			return true
		}
		var sb strings.Builder
		return WriteTrace(&sb, tr) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Robustness: Unmarshal must never panic on arbitrary bit strings, and
// must never return both a frame and an error.
func TestUnmarshalSurvivesArbitraryBits(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]bool, 0, len(raw)*8)
		for _, b := range raw {
			for i := 0; i < 8; i++ {
				bits = append(bits, b>>uint(i)&1 == 1)
			}
		}
		frame, err := Unmarshal(bits)
		if err != nil {
			return frame == nil
		}
		return frame.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
