// Package runner is the deterministic parallel replication harness: it
// shards seeds across a bounded worker pool, runs one replicate per seed
// (each on its own sim.Kernel — the experiment constructors build their
// own), and merges the per-seed experiments.Table results into
// mean / stddev / 95% confidence-interval columns with per-seed ranges.
//
// Determinism is preserved under parallelism by construction: replicates
// never share state (the simulation library has no package-level mutable
// variables, and every kernel's random streams derive only from its
// seed), and the merge stage folds results in seed order, not completion
// order. Running with -par 1 and -par N therefore produces byte-identical
// aggregated tables; internal/runner's tests and `go test -race ./...`
// enforce both halves of that claim.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Seeds returns n consecutive seeds starting at base: the conventional
// seed set for an n-replicate run.
func Seeds(base uint64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)
	}
	return out
}

// Result pairs one replicate's output with the seed that produced it.
type Result[T any] struct {
	Seed  uint64
	Value T
	Err   error
}

// Progress receives replicate-completion telemetry from MapProgress:
// done replicates finished out of total. Calls are serialized and done
// is strictly increasing, so implementations need no locking of their
// own. Progress is wall-clock telemetry — it observes completion order,
// which varies with scheduling — and must never feed into deterministic
// artifacts; the seed-ordered results are the deterministic output.
type Progress func(done, total int)

// Map runs fn once per seed on a pool of at most workers goroutines and
// returns the results in seed order, regardless of completion order.
// workers <= 0 means GOMAXPROCS. A replicate that panics is reported as
// that result's Err rather than crashing the pool. Map returns an error
// only when ctx is cancelled; replicates not yet started at cancellation
// carry ctx's error in their Result.
func Map[T any](ctx context.Context, seeds []uint64, workers int, fn func(ctx context.Context, seed uint64) (T, error)) ([]Result[T], error) {
	return MapProgress(ctx, seeds, workers, nil, fn)
}

// MapProgress is Map with completion telemetry: progress (when non-nil)
// is invoked after each replicate finishes, including failed and
// cancelled ones, so a caller-side progress display always reaches
// done == total.
func MapProgress[T any](ctx context.Context, seeds []uint64, workers int, progress Progress, fn func(ctx context.Context, seed uint64) (T, error)) ([]Result[T], error) {
	results := make([]Result[T], len(seeds))
	for i, s := range seeds {
		results[i].Seed = s
	}
	if len(seeds) == 0 {
		return results, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}

	// Progress calls serialize under progMu so done is strictly
	// increasing no matter which worker finishes first.
	var progMu sync.Mutex
	done := 0
	report := func(n int) {
		if progress == nil || n <= 0 {
			return
		}
		progMu.Lock()
		for i := 0; i < n; i++ {
			done++
			progress(done, len(seeds))
		}
		progMu.Unlock()
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i].Value, results[i].Err = runOne(ctx, seeds[i], fn)
				report(1)
			}
		}()
	}

dispatch:
	for i := range seeds {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Replicates never handed to a worker fail with the
			// cancellation cause; in-flight ones run to completion.
			for j := i; j < len(seeds); j++ {
				results[j].Err = ctx.Err()
			}
			report(len(seeds) - i)
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return results, ctx.Err()
}

// runOne executes a single replicate, converting a panic into an error so
// one bad seed cannot take down the whole pool.
func runOne[T any](ctx context.Context, seed uint64, fn func(ctx context.Context, seed uint64) (T, error)) (v T, err error) {
	if e := ctx.Err(); e != nil {
		return v, e
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: replicate seed %d panicked: %v", seed, r)
		}
	}()
	return fn(ctx, seed)
}
