// Mergeable instruments: the fleet-scale half of the observability
// layer. A per-vehicle registry is a shard of the fleet's telemetry;
// Registry.Merge folds shards into one fleet registry exactly — counters
// and histogram bucket counts add as integers, histogram sums and probe
// readings add as float64, and max merges as max-of-max — so a vehicle
// SOC view aggregates without losing the underlying distributions.
//
// Determinism contract: Merge itself is deterministic for a given
// (dst, src) pair, and integer state is associative, but float64 addition
// is not — merging shards in different orders can differ in the last ULP.
// Callers that need byte-identical aggregates at any worker count must
// therefore fold shards in one fixed order at a single merge point;
// fleet.DriveObs does exactly that (vehicle-index order at the Drive
// barrier — see DESIGN.md "Merge at the barrier").
//
// The merge hot path allocates nothing once the destination registry
// holds the union of keys (first merge creates them); the fleet driver's
// steady state is pinned by TestFleetMergeSteadyStateAllocs.
package obs

import "fmt"

// Merge adds src's count into c. Nil receivers and nil sources are both
// valid (disabled instruments merge as zero).
func (c *Counter) Merge(src *Counter) {
	if c == nil || src == nil {
		return
	}
	c.v += src.v
}

// Merge adds src's level into g: the fleet aggregate of a per-vehicle
// level is the sum (report means by dividing by the population).
func (g *Gauge) Merge(src *Gauge) {
	if g == nil || src == nil {
		return
	}
	g.v += src.v
}

// Merge folds src into h: bucket counts, total count and sum add; max is
// the max over both (respecting first-sample initialization, so merging
// an all-negative histogram into an empty one keeps the negative max).
// The histograms must have identical bucket bounds — merging estimates
// across different bucketings would silently corrupt quantiles, so a
// mismatch is an error. Nil receiver or source is a no-op.
func (h *Histogram) Merge(src *Histogram) error {
	if h == nil || src == nil || src.count == 0 {
		return nil
	}
	if len(h.bounds) != len(src.bounds) {
		return fmt.Errorf("obs: histogram merge: %d vs %d bucket bounds", len(h.bounds), len(src.bounds))
	}
	for i, b := range h.bounds {
		if src.bounds[i] != b {
			return fmt.Errorf("obs: histogram merge: bound %d differs (%v vs %v)", i, b, src.bounds[i])
		}
	}
	if h.count == 0 || src.max > h.max {
		h.max = src.max
	}
	for i, c := range src.counts {
		h.counts[i] += c
	}
	h.count += src.count
	h.sum += src.sum
	return nil
}

// Merge folds src's instruments into r, key by key: counters, gauges and
// histograms merge exactly (see the instrument Merge methods); probe
// readings — src's materialized values if it was Materialized, live
// fn() readings otherwise — accumulate into r's frozen map, so the
// merged registry snapshots them as ordinary "probe" rows without
// holding closures into src's subsystems. Missing keys are created on
// first merge (histograms clone src's bounds); after that the merge
// path allocates nothing.
//
// Merge is NOT associativity-safe for float64 state (gauge levels,
// histogram sums, probe readings): fold shards in one fixed order when
// byte-identical output matters. It returns the first histogram
// bound-mismatch error, leaving earlier keys merged.
func (r *Registry) Merge(src *Registry) error {
	if r == nil || src == nil {
		return nil
	}
	for k, c := range src.counters {
		r.Counter(k).Merge(c)
	}
	for k, g := range src.gauges {
		r.Gauge(k).Merge(g)
	}
	for k, h := range src.histograms {
		dst, ok := r.histograms[k]
		if !ok {
			// Clone src's exact bounds rather than going through the
			// Histogram constructor: nil bounds there means "default
			// buckets", which would mismatch a source registered with
			// explicitly empty bounds.
			dst = &Histogram{
				bounds: append([]float64(nil), h.bounds...),
				counts: make([]uint64, len(h.counts)),
			}
			r.histograms[k] = dst
		}
		if err := dst.Merge(h); err != nil {
			return fmt.Errorf("%w (key %q)", err, k)
		}
	}
	if len(src.probes)+len(src.frozen) > 0 && r.frozen == nil {
		r.frozen = make(map[string]float64, len(src.probes)+len(src.frozen))
	}
	for k, fn := range src.probes {
		if _, ok := src.frozen[k]; ok {
			continue // materialized reading wins, same rule as Snapshot
		}
		r.frozen[k] += fn()
	}
	for k, v := range src.frozen {
		r.frozen[k] += v
	}
	return nil
}
