// Package verif quantifies the paper's verification-versus-extensibility
// tension (Sections 5-6): an extensible architecture ships "more
// behaviors and configurations than necessary for current use cases",
// and each reserved configuration must still be verified — "such unused
// configurations and behaviors are typical targets of security
// vulnerabilities".
//
// The model: a product's configuration space is a set of features, each
// with a number of options. Exhaustive verification costs one unit per
// full configuration (the product of all option counts — astronomically
// infeasible at automotive scale). The practical alternative the paper's
// extensibility argument depends on is compositional/combinatorial
// coverage; this package implements a real greedy pairwise covering-array
// generator (AETG-style) so the costs in experiment E6 come from an
// actual algorithm rather than a formula.
package verif

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"autosec/internal/sim"
)

// Feature is one configurable dimension.
type Feature struct {
	Name    string
	Options int
	// Reserved marks configurations shipped for future use only.
	Reserved bool
}

// Space is a configuration space.
type Space struct {
	Features []Feature
}

// ErrBadFeature rejects features with fewer than one option.
var ErrBadFeature = errors.New("verif: feature needs at least one option")

// NewSpace validates and builds a space.
func NewSpace(features ...Feature) (*Space, error) {
	for _, f := range features {
		if f.Options < 1 {
			return nil, fmt.Errorf("%w: %s", ErrBadFeature, f.Name)
		}
	}
	return &Space{Features: features}, nil
}

// WithoutReserved returns the sub-space of currently-used features.
func (s *Space) WithoutReserved() *Space {
	out := &Space{}
	for _, f := range s.Features {
		if !f.Reserved {
			out.Features = append(out.Features, f)
		}
	}
	return out
}

// TotalConfigs is the exhaustive configuration count, saturating at
// +Inf-ish float64 to stay meaningful at automotive scale.
func (s *Space) TotalConfigs() float64 {
	total := 1.0
	for _, f := range s.Features {
		total *= float64(f.Options)
	}
	return total
}

// PairCount is the number of distinct option pairs across features.
func (s *Space) PairCount() int {
	n := 0
	for i := 0; i < len(s.Features); i++ {
		for j := i + 1; j < len(s.Features); j++ {
			n += s.Features[i].Options * s.Features[j].Options
		}
	}
	return n
}

// Config is one row of a covering array: the chosen option per feature.
type Config []int

// pairKey identifies an (featureA, optA, featureB, optB) pair.
type pairKey struct {
	fa, oa, fb, ob int
}

// GreedyPairwise builds a pairwise covering array with the classic greedy
// heuristic: repeatedly construct the row covering the most uncovered
// pairs. Deterministic given the seed (used only to break ties by feature
// visiting order).
func (s *Space) GreedyPairwise(seed uint64) []Config {
	nf := len(s.Features)
	if nf == 0 {
		return nil
	}
	if nf == 1 {
		out := make([]Config, s.Features[0].Options)
		for o := range out {
			out[o] = Config{o}
		}
		return out
	}
	uncovered := make(map[pairKey]bool)
	for i := 0; i < nf; i++ {
		for j := i + 1; j < nf; j++ {
			for a := 0; a < s.Features[i].Options; a++ {
				for b := 0; b < s.Features[j].Options; b++ {
					uncovered[pairKey{i, a, j, b}] = true
				}
			}
		}
	}
	rng := sim.NewStream(seed, "verif.pairwise")
	var rows []Config
	for len(uncovered) > 0 {
		row := make(Config, nf)
		for i := range row {
			row[i] = -1
		}
		order := rng.Perm(nf)
		for _, fi := range order {
			bestOpt, bestGain, bestPot := 0, -1, -1
			for o := 0; o < s.Features[fi].Options; o++ {
				// gain: uncovered pairs completed against already-placed
				// features; pot: uncovered pairs still reachable through
				// unplaced features (tie-break, so a first-placed feature
				// prefers options with remaining work).
				gain, pot := 0, 0
				for fj := 0; fj < nf; fj++ {
					if fj == fi {
						continue
					}
					if row[fj] != -1 {
						if uncovered[normPair(fi, o, fj, row[fj])] {
							gain++
						}
						continue
					}
					for b := 0; b < s.Features[fj].Options; b++ {
						if uncovered[normPair(fi, o, fj, b)] {
							pot++
						}
					}
				}
				if gain > bestGain || (gain == bestGain && pot > bestPot) {
					bestGain, bestPot, bestOpt = gain, pot, o
				}
			}
			row[fi] = bestOpt
		}
		// Mark covered pairs; guard against a zero-gain row looping forever
		// by force-covering one remaining pair.
		covered := 0
		for i := 0; i < nf; i++ {
			for j := i + 1; j < nf; j++ {
				k := pairKey{i, row[i], j, row[j]}
				if uncovered[k] {
					delete(uncovered, k)
					covered++
				}
			}
		}
		if covered == 0 {
			for k := range uncovered {
				row[k.fa] = k.oa
				row[k.fb] = k.ob
				delete(uncovered, k)
				break
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func normPair(fa, oa, fb, ob int) pairKey {
	if fa < fb {
		return pairKey{fa, oa, fb, ob}
	}
	return pairKey{fb, ob, fa, oa}
}

// CoversAllPairs checks a covering array for completeness (test oracle).
func (s *Space) CoversAllPairs(rows []Config) bool {
	nf := len(s.Features)
	if nf < 2 {
		return true
	}
	seen := make(map[pairKey]bool)
	for _, r := range rows {
		if len(r) != nf {
			return false
		}
		for i := 0; i < nf; i++ {
			for j := i + 1; j < nf; j++ {
				seen[pairKey{i, r[i], j, r[j]}] = true
			}
		}
	}
	for i := 0; i < nf; i++ {
		for j := i + 1; j < nf; j++ {
			for a := 0; a < s.Features[i].Options; a++ {
				for b := 0; b < s.Features[j].Options; b++ {
					if !seen[pairKey{i, a, j, b}] {
						return false
					}
				}
			}
		}
	}
	return true
}

// CostReport compares verification strategies for one space.
type CostReport struct {
	Features         int
	TotalConfigs     float64 // exhaustive cost (configs to verify)
	PairwiseRows     int     // covering-array cost
	LowerBound       int     // max pairwise product: no array can be smaller
	ReservedOverhead float64 // pairwise rows with reserved / without - 1
}

func (r CostReport) String() string {
	return fmt.Sprintf("features=%d exhaustive=%.3g pairwise=%d (lower bound %d) reserved overhead=%.1f%%",
		r.Features, r.TotalConfigs, r.PairwiseRows, r.LowerBound, 100*r.ReservedOverhead)
}

// Assess builds the full cost report, including the marginal cost of the
// reserved-for-future configurations.
func (s *Space) Assess(seed uint64) CostReport {
	rows := s.GreedyPairwise(seed)
	lb := 0
	for i := 0; i < len(s.Features); i++ {
		for j := i + 1; j < len(s.Features); j++ {
			if p := s.Features[i].Options * s.Features[j].Options; p > lb {
				lb = p
			}
		}
	}
	report := CostReport{
		Features:     len(s.Features),
		TotalConfigs: s.TotalConfigs(),
		PairwiseRows: len(rows),
		LowerBound:   lb,
	}
	base := s.WithoutReserved()
	if len(base.Features) != len(s.Features) && len(base.Features) > 1 {
		baseRows := len(base.GreedyPairwise(seed))
		if baseRows > 0 {
			report.ReservedOverhead = float64(len(rows))/float64(baseRows) - 1
		}
	}
	return report
}

// GrowthCurve reports pairwise cost as features accumulate one at a time
// (the E6 sweep: verification cost versus extensibility headroom). The
// result has one entry per prefix of the feature list, sorted as given.
func GrowthCurve(features []Feature, seed uint64) []CostReport {
	var out []CostReport
	for i := 1; i <= len(features); i++ {
		s := &Space{Features: features[:i]}
		out = append(out, s.Assess(seed))
	}
	return out
}

// SortedByOptions returns a copy of features sorted descending by option
// count — the order that exposes covering-array growth most clearly.
func SortedByOptions(features []Feature) []Feature {
	out := append([]Feature(nil), features...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Options > out[j].Options })
	return out
}

// Infeasible reports whether exhaustive verification at the given budget
// (configurations verifiable per engineer-day × days) cannot finish.
func (r CostReport) Infeasible(configsPerDay float64, days float64) bool {
	return r.TotalConfigs > configsPerDay*days || math.IsInf(r.TotalConfigs, 1)
}
