package can

import (
	"bytes"
	"testing"
)

// bitsFromBytes expands fuzz input into the bit-sequence domain of the
// codec. The first byte says how many trailing bits to drop (0-7) so the
// fuzzer can reach wire lengths that are not a multiple of eight.
func bitsFromBytes(data []byte) []bool {
	if len(data) == 0 {
		return nil
	}
	trim := int(data[0] % 8)
	bits := make([]bool, 0, 8*(len(data)-1))
	for _, b := range data[1:] {
		for i := 7; i >= 0; i-- {
			bits = append(bits, b>>uint(i)&1 == 1)
		}
	}
	if trim > len(bits) {
		trim = len(bits)
	}
	return bits[:len(bits)-trim]
}

// bytesFromBits inverts bitsFromBytes, for building seed corpus entries
// out of valid marshalled frames.
func bytesFromBits(bits []bool) []byte {
	pad := (8 - len(bits)%8) % 8
	out := []byte{byte(pad)}
	var cur byte
	n := 0
	for _, b := range bits {
		cur <<= 1
		if b {
			cur |= 1
		}
		n++
		if n == 8 {
			out = append(out, cur)
			cur, n = 0, 0
		}
	}
	if n > 0 {
		out = append(out, cur<<uint(8-n))
	}
	return out
}

// seedWire marshals a frame and encodes it for the fuzzer; panics only on
// programming errors in the seed set itself.
func seedWire(t *testing.F, f Frame) []byte {
	t.Helper()
	wire, err := Marshal(&f)
	if err != nil {
		t.Fatalf("seed frame invalid: %v", err)
	}
	return bytesFromBits(wire)
}

// FuzzUnmarshal drives the wire-format decoder with arbitrary bit
// sequences. Whatever comes in, Unmarshal must not panic; and anything it
// accepts must survive a Marshal/Unmarshal round trip as an equal frame
// (DLC 9-15 and remote-frame length quirks normalise on the first
// decode, so the law is checked from the decoded frame onward).
func FuzzUnmarshal(f *testing.F) {
	f.Add(seedWire(f, Frame{ID: 0x100, Data: []byte{1, 2, 3}}))
	f.Add(seedWire(f, Frame{ID: 0x1ABCDE, Extended: true, Data: []byte{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4}}))
	f.Add(seedWire(f, Frame{ID: 0x7FF, Remote: true}))
	f.Add(seedWire(f, Frame{ID: 0, Data: nil}))
	f.Add([]byte{0x00, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		bits := bitsFromBytes(data)
		fr, err := Unmarshal(bits)
		if err != nil {
			if fr != nil {
				t.Fatal("Unmarshal returned a frame alongside an error")
			}
			return
		}
		if err := fr.Validate(); err != nil {
			t.Fatalf("Unmarshal accepted an invalid frame %v: %v", fr, err)
		}
		wire, err := Marshal(fr)
		if err != nil {
			t.Fatalf("re-Marshal of decoded frame %v failed: %v", fr, err)
		}
		back, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("round trip of decoded frame %v failed: %v", fr, err)
		}
		if !fr.Equal(back) {
			t.Fatalf("round trip changed the frame: %v -> %v", fr, back)
		}
	})
}

// FuzzFrameRoundtrip drives the encoder from the frame domain: any frame
// that validates as a classic frame must marshal, and the wire image must
// decode back to an equal frame. Single-bit corruption of the stuffed
// region must never yield a different accepted frame (CRC-15 catches all
// single-bit errors).
func FuzzFrameRoundtrip(f *testing.F) {
	f.Add(uint32(0x100), false, false, []byte{1, 2, 3})
	f.Add(uint32(0x1ABCDE), true, false, []byte{0xDE, 0xAD})
	f.Add(uint32(0x7FF), false, true, []byte{})
	f.Add(uint32(0), false, false, []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, id uint32, extended, remote bool, data []byte) {
		fr := &Frame{ID: ID(id), Extended: extended, Remote: remote, Data: data}
		if remote {
			fr.Data = nil // classic remote frames carry no payload
		}
		if fr.Validate() != nil {
			return
		}
		wire, err := Marshal(fr)
		if err != nil {
			t.Fatalf("Marshal rejected a valid frame %v: %v", fr, err)
		}
		back, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("Unmarshal rejected Marshal output for %v: %v", fr, err)
		}
		if !fr.Equal(back) {
			t.Fatalf("round trip changed the frame: %v -> %v", fr, back)
		}
		// Flip one bit in the stuffed region (SOF..CRC): the decoder must
		// reject or, at minimum, never silently return a different frame.
		flip := int(id) % (len(wire) - 10)
		mut := append([]bool(nil), wire...)
		mut[flip] = !mut[flip]
		got, err := Unmarshal(mut)
		if err == nil && !got.Equal(fr) {
			t.Fatalf("single-bit corruption at %d decoded to a different frame: %v -> %v", flip, fr, got)
		}
	})
}

// FuzzTraceRoundtrip exercises the text trace parser (traceio.go) with
// arbitrary input. Whatever ParseTrace accepts must re-serialise through
// WriteTrace into a trace that parses back with the same frames.
func FuzzTraceRoundtrip(f *testing.F) {
	f.Add([]byte("0.010000 engine 0C0 DEADBEEF\n"))
	f.Add([]byte("1.200000 atk 1FFFFFFF - EXT\n# comment\n\n"))
	f.Add([]byte("0.5 gw 100 0102030405060708 FD,BRS\n"))
	f.Add([]byte("0.25 x 7FF - RTR,ERR\n"))
	f.Add([]byte("not a trace\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ParseTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatalf("WriteTrace failed on a parsed trace: %v", err)
		}
		back, err := ParseTrace(&buf)
		if err != nil {
			t.Fatalf("re-parse of written trace failed: %v\n%s", err, buf.String())
		}
		if len(back.Records) != len(tr.Records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(tr.Records), len(back.Records))
		}
		for i := range tr.Records {
			a, b := tr.Records[i], back.Records[i]
			if !a.Frame.Equal(&b.Frame) || a.Corrupted != b.Corrupted || a.Sender != b.Sender {
				t.Fatalf("record %d changed in round trip:\n%+v\n%+v", i, a, b)
			}
		}
	})
}
