package verif_test

import (
	"fmt"

	"autosec/internal/verif"
)

// Example contrasts exhaustive configuration verification with a pairwise
// covering array for a small extensible feature set.
func ExampleSpace_GreedyPairwise() {
	space, _ := verif.NewSpace(
		verif.Feature{Name: "mac-bits", Options: 3},
		verif.Feature{Name: "detectors", Options: 3},
		verif.Feature{Name: "gateway", Options: 3},
		verif.Feature{Name: "future-crypto", Options: 3, Reserved: true},
	)
	rows := space.GreedyPairwise(1)
	fmt.Printf("exhaustive configs: %.0f\n", space.TotalConfigs())
	fmt.Printf("pairwise rows: %d (complete: %v)\n", len(rows), space.CoversAllPairs(rows))
	// Output:
	// exhaustive configs: 81
	// pairwise rows: 13 (complete: true)
}
