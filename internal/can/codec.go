package can

import (
	"errors"
	"fmt"
)

// This file implements the physical-layer view of a frame that the timing
// and fault models need: the bit sequence on the wire, CRC-15, and bit
// stuffing. The bus simulation uses BitLength for transmission timing; the
// codec round trip is also exercised directly by fault-injection tests
// (single-bit corruption must be caught by the CRC).

// crc15Poly is the CAN CRC polynomial x^15+x^14+x^10+x^8+x^7+x^4+x^3+1.
const crc15Poly = 0x4599

// CRC15 computes the CAN 15-bit CRC over a bit sequence (booleans, MSB
// first), as specified in ISO 11898-1.
func CRC15(bits []bool) uint16 {
	var crc uint16
	for _, b := range bits {
		bit := uint16(0)
		if b {
			bit = 1
		}
		crcNext := bit ^ (crc >> 14)
		crc = (crc << 1) & 0x7FFF
		if crcNext == 1 {
			crc ^= crc15Poly
		}
	}
	return crc & 0x7FFF
}

// Stuff inserts a complement bit after every run of five identical bits,
// per the CAN bit-stuffing rule. The input covers SOF through the CRC
// sequence; later fields (CRC delimiter, ACK, EOF) are not stuffed.
func Stuff(bits []bool) []bool {
	out := make([]bool, 0, len(bits)+len(bits)/5)
	run := 0
	var last bool
	for i, b := range bits {
		if i > 0 && b == last {
			run++
		} else {
			run = 1
		}
		out = append(out, b)
		last = b
		if run == 5 {
			out = append(out, !b)
			last = !b
			run = 1
		}
	}
	return out
}

// ErrStuffViolation is returned by Unstuff when six identical consecutive
// bits appear in a stuffed region — the on-wire signature of a stuff error.
var ErrStuffViolation = errors.New("can: bit stuffing violation")

// Unstuff removes stuff bits, returning the original sequence. It fails
// with ErrStuffViolation if a run of six identical bits is found.
func Unstuff(bits []bool) ([]bool, error) {
	out := make([]bool, 0, len(bits))
	run := 0
	var last bool
	skip := false
	for i, b := range bits {
		if skip {
			// This is the stuff bit: must be the complement of the run.
			if b == last {
				return nil, ErrStuffViolation
			}
			skip = false
			run = 1
			last = b
			continue
		}
		if i > 0 && b == last {
			run++
		} else {
			run = 1
		}
		if run > 5 {
			return nil, ErrStuffViolation
		}
		out = append(out, b)
		last = b
		if run == 5 {
			skip = true
		}
	}
	return out, nil
}

// appendBits appends the low n bits of v, MSB first.
func appendBits(dst []bool, v uint64, n int) []bool {
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, v>>uint(i)&1 == 1)
	}
	return dst
}

// bitsToUint packs up to 64 bits (MSB first) into an integer.
func bitsToUint(bits []bool) uint64 {
	var v uint64
	for _, b := range bits {
		v <<= 1
		if b {
			v |= 1
		}
	}
	return v
}

// headerBits returns the frame fields from SOF through the data field —
// the region covered by the CRC and subject to stuffing. Classic CAN only;
// the FD field layout differs but its timing is handled analytically in
// BitLength.
func headerBits(f *Frame) ([]bool, error) {
	if f.FD {
		return nil, errors.New("can: bit-level codec models classic frames only")
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	bits := make([]bool, 0, 90)
	bits = append(bits, false) // SOF (dominant)
	if !f.Extended {
		bits = appendBits(bits, uint64(f.ID), 11)
		bits = append(bits, f.Remote) // RTR
		bits = append(bits, false)    // IDE = standard
		bits = append(bits, false)    // r0
	} else {
		bits = appendBits(bits, uint64(f.ID>>18), 11) // base ID
		bits = append(bits, true)                     // SRR (recessive)
		bits = append(bits, true)                     // IDE = extended
		bits = appendBits(bits, uint64(f.ID)&0x3FFFF, 18)
		bits = append(bits, f.Remote) // RTR
		bits = append(bits, false)    // r1
		bits = append(bits, false)    // r0
	}
	bits = appendBits(bits, uint64(f.DLC()), 4)
	if !f.Remote {
		for _, b := range f.Data {
			bits = appendBits(bits, uint64(b), 8)
		}
	}
	return bits, nil
}

// Marshal encodes a classic CAN frame into its stuffed on-wire bit
// sequence: SOF..data (stuffed, with CRC included in the stuffed region),
// then CRC delimiter, ACK slot, ACK delimiter and 7 EOF bits.
func Marshal(f *Frame) ([]bool, error) {
	body, err := headerBits(f)
	if err != nil {
		return nil, err
	}
	crc := CRC15(body)
	withCRC := appendBits(append([]bool(nil), body...), uint64(crc), 15)
	wire := Stuff(withCRC)
	wire = append(wire, true)  // CRC delimiter
	wire = append(wire, false) // ACK slot (dominant: acknowledged)
	wire = append(wire, true)  // ACK delimiter
	for i := 0; i < 7; i++ {
		wire = append(wire, true) // EOF
	}
	return wire, nil
}

// Unmarshal decodes a stuffed on-wire bit sequence back into a frame,
// verifying the CRC. It accepts exactly the output format of Marshal.
var (
	ErrTruncated = errors.New("can: truncated frame")
	ErrCRC       = errors.New("can: CRC mismatch")
	ErrForm      = errors.New("can: form error")
	ErrAck       = errors.New("can: ACK error (recessive ACK slot)")
)

func Unmarshal(wire []bool) (*Frame, error) {
	// The trailing 10 bits (delim, ack, delim, 7×EOF) are unstuffed.
	if len(wire) < 10 {
		return nil, ErrTruncated
	}
	tail := wire[len(wire)-10:]
	if !tail[0] || !tail[2] {
		return nil, fmt.Errorf("%w: bad delimiter", ErrForm)
	}
	if tail[1] {
		return nil, ErrAck
	}
	for _, b := range tail[3:] {
		if !b {
			return nil, fmt.Errorf("%w: dominant bit in EOF", ErrForm)
		}
	}
	stuffed := wire[:len(wire)-10]
	raw, err := Unstuff(stuffed)
	if err != nil {
		return nil, err
	}
	if len(raw) < 1+11+1+1+1+4+15 {
		return nil, ErrTruncated
	}
	if raw[0] {
		return nil, fmt.Errorf("%w: recessive SOF", ErrForm)
	}
	pos := 1
	baseID := bitsToUint(raw[pos : pos+11])
	pos += 11
	f := &Frame{}
	rtrOrSRR := raw[pos]
	pos++
	ide := raw[pos]
	pos++
	if !ide {
		f.ID = ID(baseID)
		f.Remote = rtrOrSRR
		pos++ // r0
	} else {
		f.Extended = true
		if len(raw) < pos+18+1+2+4+15 {
			return nil, ErrTruncated
		}
		ext := bitsToUint(raw[pos : pos+18])
		pos += 18
		f.ID = ID(baseID<<18 | ext)
		f.Remote = raw[pos]
		pos++
		pos += 2 // r1, r0
	}
	dlc := int(bitsToUint(raw[pos : pos+4]))
	pos += 4
	dataLen := dlc
	if dataLen > 8 {
		dataLen = 8 // DLC 9-15 means 8 bytes in classic CAN
	}
	if f.Remote {
		dataLen = 0
	}
	if len(raw) < pos+8*dataLen+15 {
		return nil, ErrTruncated
	}
	for i := 0; i < dataLen; i++ {
		f.Data = append(f.Data, byte(bitsToUint(raw[pos:pos+8])))
		pos += 8
	}
	gotCRC := uint16(bitsToUint(raw[pos : pos+15]))
	if want := CRC15(raw[:pos]); gotCRC != want {
		return nil, fmt.Errorf("%w: got %#x want %#x", ErrCRC, gotCRC, want)
	}
	return f, nil
}

// WireLength returns the exact number of bits Marshal would put on the
// wire for a classic frame, plus the 3-bit interframe space.
func WireLength(f *Frame) (int, error) {
	wire, err := Marshal(f)
	if err != nil {
		return 0, err
	}
	return len(wire) + 3, nil
}

// bitCounter streams the stuffed-region bits of a classic frame without
// materializing them, accumulating the CRC-15 and the stuff-bit count in
// one pass. It is the allocation-free equivalent of
// len(Stuff(headerBits+CRC)) and exists for the bus timing hot path;
// Marshal remains the reference bit-level encoder, and
// TestClassicWireBitsMatchesMarshal pins the two together.
type bitCounter struct {
	crc   uint16
	run   int
	last  bool
	any   bool
	count int
}

// crcOnly feeds one bit into the CRC accumulator.
func (bc *bitCounter) crcOnly(b bool) {
	bit := uint16(0)
	if b {
		bit = 1
	}
	next := bit ^ (bc.crc >> 14)
	bc.crc = (bc.crc << 1) & 0x7FFF
	if next == 1 {
		bc.crc ^= crc15Poly
	}
}

// stuffOnly feeds one bit into the stuffing counter: the bit itself, plus
// a complement stuff bit after every run of five.
func (bc *bitCounter) stuffOnly(b bool) {
	if bc.any && b == bc.last {
		bc.run++
	} else {
		bc.run = 1
	}
	bc.count++
	bc.last = b
	bc.any = true
	if bc.run == 5 {
		bc.count++ // stuff bit, complement of b
		bc.last = !b
		bc.run = 1
	}
}

// bit feeds one header/data bit: CRC-covered and stuffed.
func (bc *bitCounter) bit(b bool) {
	bc.crcOnly(b)
	bc.stuffOnly(b)
}

// bits feeds the low n bits of v, MSB first.
func (bc *bitCounter) bits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		bc.bit(v>>uint(i)&1 == 1)
	}
}

// classicWireBits returns exactly what WireLength returns for a valid
// classic frame — stuffed SOF..CRC region, 10 tail bits (CRC delimiter,
// ACK slot, ACK delimiter, 7×EOF) and the 3-bit interframe space — with
// no allocation.
func classicWireBits(f *Frame) (int, error) {
	if f.FD {
		return 0, errors.New("can: bit-level codec models classic frames only")
	}
	if err := f.Validate(); err != nil {
		return 0, err
	}
	var bc bitCounter
	bc.bit(false) // SOF (dominant)
	if !f.Extended {
		bc.bits(uint64(f.ID), 11)
		bc.bit(f.Remote) // RTR
		bc.bit(false)    // IDE = standard
		bc.bit(false)    // r0
	} else {
		bc.bits(uint64(f.ID>>18), 11) // base ID
		bc.bit(true)                  // SRR (recessive)
		bc.bit(true)                  // IDE = extended
		bc.bits(uint64(f.ID)&0x3FFFF, 18)
		bc.bit(f.Remote) // RTR
		bc.bit(false)    // r1
		bc.bit(false)    // r0
	}
	bc.bits(uint64(f.DLC()), 4)
	if !f.Remote {
		for _, b := range f.Data {
			bc.bits(uint64(b), 8)
		}
	}
	crc := bc.crc & 0x7FFF
	for i := 14; i >= 0; i-- {
		bc.stuffOnly(crc>>uint(i)&1 == 1)
	}
	return bc.count + 10 + 3, nil
}

// BitLength estimates on-wire bits for timing purposes, handling both
// classic and FD frames. For classic frames it is exact (same as
// WireLength). For FD frames it uses the standard field sizes with a
// conservative stuffing estimate, returning arbitration-phase and
// data-phase bit counts separately so the bus can apply two bitrates.
func BitLength(f *Frame) (arbBits, dataBits int, err error) {
	if !f.FD {
		n, err := classicWireBits(f)
		return n, 0, err
	}
	if err := f.Validate(); err != nil {
		return 0, 0, err
	}
	// Arbitration phase: SOF + ID (+SRR/IDE for ext) + control up to BRS.
	arb := 1 + 11 + 3
	if f.Extended {
		arb += 2 + 18
	}
	// Data phase (after BRS): ESI + DLC + data + stuff-count + CRC(17/21) +
	// fixed stuff bits. Then back at nominal rate: CRC delim, ACK, EOF, IFS.
	crcLen := 17
	if len(f.Data) > 16 {
		crcLen = 21
	}
	data := 1 + 4 + 8*len(f.Data) + 4 + crcLen
	// Dynamic stuffing applies through the data field (~1 in 5 worst case,
	// ~1 in 8 typical); use the deterministic pessimistic bound /5 so the
	// timing model never underestimates load.
	arb += arb / 5
	data += data / 5
	tail := 1 + 1 + 1 + 7 + 3
	if !f.BRS {
		// Whole frame at nominal rate.
		return arb + data + tail, 0, nil
	}
	return arb + tail, data, nil
}
