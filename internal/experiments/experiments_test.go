package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// These tests assert the *shape* of each experiment's result — who wins,
// and in which direction the trend runs — which is the reproduction
// criterion for a paper whose claims are qualitative.

func cell(t *testing.T, tb *Table, row, col int) string {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d); table:\n%s", tb.ID, row, col, tb)
	}
	return tb.Rows[row][col]
}

func cellF(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tb, row, col), 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d)=%q not numeric", tb.ID, row, col, cell(t, tb, row, col))
	}
	return v
}

func TestE1DoSShape(t *testing.T) {
	tb := E1BusDoS(1)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows=%d", len(tb.Rows))
	}
	// Load and victim misses grow with attack rate.
	baseLoad := cellF(t, tb, 0, 1)
	worstLoad := cellF(t, tb, 3, 1)
	if worstLoad <= baseLoad {
		t.Fatalf("load did not grow: %.3f -> %.3f\n%s", baseLoad, worstLoad, tb)
	}
	baseMiss := cellF(t, tb, 0, 3)
	worstMiss := cellF(t, tb, 3, 3)
	if baseMiss != 0 {
		t.Fatalf("misses without attack: %v\n%s", baseMiss, tb)
	}
	if worstMiss <= 0.5 {
		t.Fatalf("full-rate DoS missed only %.3f\n%s", worstMiss, tb)
	}
	// The IDS sees the flood.
	if cellF(t, tb, 3, 5) == 0 {
		t.Fatalf("no IDS alerts under flood\n%s", tb)
	}
}

func TestE2SideChannelShape(t *testing.T) {
	tb := E2SideChannel(1)
	// More noise -> more traces (rows 0..2 unmasked).
	n0 := cellF(t, tb, 0, 3)
	n1 := cellF(t, tb, 1, 3)
	if n1 < n0 {
		t.Fatalf("noise did not raise trace count\n%s", tb)
	}
	// First-order CPA fails against masking (row 3).
	if cell(t, tb, 3, 4) != "no" {
		t.Fatalf("masking fell to first-order CPA\n%s", tb)
	}
	// Second-order succeeds but needs more traces than unmasked row 0.
	if cell(t, tb, 4, 4) != "yes" {
		t.Fatalf("second-order CPA failed\n%s", tb)
	}
	n4 := cellF(t, tb, 4, 3)
	if n4 <= n0 {
		t.Fatalf("masking did not raise attack cost\n%s", tb)
	}
}

func TestE3FleetShape(t *testing.T) {
	tb := E3FleetCompromise(1)
	shared := cellF(t, tb, 0, 4)
	perModel := cellF(t, tb, 1, 4)
	perDevice := cellF(t, tb, 2, 4)
	if shared != 1.0 {
		t.Fatalf("shared-key fraction %.3f\n%s", shared, tb)
	}
	if perModel >= shared || perModel <= perDevice {
		t.Fatalf("per-model not between: %v %v %v\n%s", shared, perModel, perDevice, tb)
	}
	if perDevice != 0.001 {
		t.Fatalf("per-device fraction %.4f\n%s", perDevice, tb)
	}
}

func TestE4PseudonymShape(t *testing.T) {
	tb := E4Pseudonym(1)
	// Row 0: no rotation, naive tracker -> near-full tracking.
	if cellF(t, tb, 0, 2) < 0.9 {
		t.Fatalf("no-rotation tracking too low\n%s", tb)
	}
	// Fast rotation defeats the naive tracker (row 6: 1s rotation naive).
	if cellF(t, tb, 6, 2) > 0.3 {
		t.Fatalf("rotation did not defeat naive tracker\n%s", tb)
	}
	// The continuity tracker substantially recovers tracking (row 7).
	if cellF(t, tb, 7, 2) < cellF(t, tb, 6, 2) {
		t.Fatalf("continuity tracker weaker than naive\n%s", tb)
	}
}

func TestE5TradeoffShape(t *testing.T) {
	tb := E5Tradeoff(1)
	// static-city overloads; static-highway is exposed; adaptive is clean.
	if cellF(t, tb, 0, 1) == 0 {
		t.Fatalf("static-city no overload\n%s", tb)
	}
	if cellF(t, tb, 1, 3) == 0 {
		t.Fatalf("static-highway no exposure\n%s", tb)
	}
	if cellF(t, tb, 2, 1) != 0 || cellF(t, tb, 2, 3) != 0 {
		t.Fatalf("adaptive not clean\n%s", tb)
	}
}

func TestE6VerificationShape(t *testing.T) {
	tb := E6Verification(1)
	last := len(tb.Rows) - 1
	exhaustive := cellF(t, tb, last, 1)
	pairwise := cellF(t, tb, last, 2)
	if pairwise*100 > exhaustive {
		t.Fatalf("pairwise %.0f not ≪ exhaustive %.0f\n%s", pairwise, exhaustive, tb)
	}
	// Exhaustive cost grows monotonically.
	for i := 1; i <= last; i++ {
		if cellF(t, tb, i, 1) <= cellF(t, tb, i-1, 1) {
			t.Fatalf("exhaustive not growing at row %d\n%s", i, tb)
		}
	}
}

func TestE7AuthCANShape(t *testing.T) {
	tb := E7AuthenticatedCAN(1)
	// Rows alternate software/SHE per rate. At 2000fps (rows 6,7) software
	// misses crypto deadlines, SHE does not.
	swMiss := cellF(t, tb, 6, 4)
	sheMiss := cellF(t, tb, 7, 4)
	if swMiss == 0 {
		t.Fatalf("software crypto never missed at 2kfps\n%s", tb)
	}
	if sheMiss != 0 {
		t.Fatalf("SHE missed %v at 2kfps\n%s", sheMiss, tb)
	}
	// At 200fps both hold.
	if cellF(t, tb, 0, 4) != 0 || cellF(t, tb, 1, 4) != 0 {
		t.Fatalf("misses at 200fps\n%s", tb)
	}
}

func TestE8GatewayShape(t *testing.T) {
	tb := E8Gateway(1)
	noGW := cellF(t, tb, 0, 1)
	fine := cellF(t, tb, 2, 1)
	if noGW < 1000 {
		t.Fatalf("no-gateway config blocked the attack?\n%s", tb)
	}
	if fine != 0 {
		t.Fatalf("fine-grained rules leaked %v frames\n%s", fine, tb)
	}
	// Legit nav traffic flows in every configuration except post-quarantine.
	if cellF(t, tb, 2, 2) == 0 {
		t.Fatalf("fine-grained rules blocked legit traffic\n%s", tb)
	}
	// Quarantine reflex fired in the last config.
	if cell(t, tb, 3, 3) != "true" {
		t.Fatalf("quarantine reflex did not fire\n%s", tb)
	}
	// And it stopped the attack early: fewer frames than no-gateway.
	if cellF(t, tb, 3, 1) >= noGW {
		t.Fatalf("quarantine did not reduce attack volume\n%s", tb)
	}
}

func TestE9RelayShape(t *testing.T) {
	tb := E9Relay(1)
	find := func(scenario string, bounding string) []string {
		for _, r := range tb.Rows {
			if r[0] == scenario && r[1] == bounding {
				return r
			}
		}
		t.Fatalf("row %q/%v missing\n%s", scenario, bounding, tb)
		return nil
	}
	if find("owner at the door handle", "true")[5] != "true" {
		t.Fatalf("legit unlock failed under bounding\n%s", tb)
	}
	if find("relay to fob in house", "false")[5] != "true" {
		t.Fatalf("relay failed without bounding\n%s", tb)
	}
	if find("relay to fob in house", "true")[5] != "false" {
		t.Fatalf("bounding failed to stop relay\n%s", tb)
	}
	if find("zero-latency relay, 1km", "true")[5] != "false" {
		t.Fatalf("bounding failed against light-speed relay\n%s", tb)
	}
}

func TestE10OTAShape(t *testing.T) {
	tb := E10OTA(1)
	for _, r := range tb.Rows {
		name, uptane, naive := r[0], r[1], r[2]
		if name == "legitimate update" {
			if uptane != "installed" {
				t.Fatalf("legit update rejected by uptane client\n%s", tb)
			}
			continue
		}
		if !strings.HasPrefix(uptane, "rejected") {
			t.Fatalf("attack %q not rejected by uptane client: %s\n%s", name, uptane, tb)
		}
		_ = naive
	}
	// The naive client falls to at least the replay, downgrade and
	// stolen-key attacks.
	weak := 0
	for _, r := range tb.Rows {
		if r[0] != "legitimate update" && strings.HasPrefix(r[2], "INSTALLED") {
			weak++
		}
	}
	if weak < 3 {
		t.Fatalf("naive client fell to only %d attacks\n%s", weak, tb)
	}
}

func TestE11IDSShape(t *testing.T) {
	tb := E11IDS(1)
	get := func(attack, det string) (float64, float64) {
		for _, r := range tb.Rows {
			if r[0] == attack && r[1] == det {
				tpr, _ := strconv.ParseFloat(r[2], 64)
				fpr, _ := strconv.ParseFloat(r[3], 64)
				return tpr, fpr
			}
		}
		t.Fatalf("row %q/%q missing\n%s", attack, det, tb)
		return 0, 0
	}
	// The combined engine catches every attack class.
	for _, atk := range []string{
		"flood (1kHz on 0x0C0)",
		"targeted injection (racing 0x100)",
		"suspension (0x120 silenced)",
		"fuzzing (random payloads on 0x1A0)",
		"unknown diagnostic ID (0x7DF)",
	} {
		if tpr, _ := get(atk, "all four"); tpr != 1 {
			t.Fatalf("combined engine missed %q (TPR=%v)\n%s", atk, tpr, tb)
		}
	}
	// No single detector family covers everything (the ensemble argument).
	for _, det := range []string{"frequency", "interval", "entropy", "spec"} {
		full := true
		for _, atk := range []string{
			"flood (1kHz on 0x0C0)",
			"suspension (0x120 silenced)",
			"fuzzing (random payloads on 0x1A0)",
			"unknown diagnostic ID (0x7DF)",
		} {
			if tpr, _ := get(atk, det); tpr != 1 {
				full = false
			}
		}
		if full {
			t.Fatalf("detector %q alone covered everything — ensemble argument void\n%s", det, tb)
		}
	}
	// Clean baseline: the combined engine stays quiet.
	if _, fpr := get("none (clean baseline)", "all four"); fpr > 0.5 {
		t.Fatalf("combined engine FP rate %.3f on clean traffic\n%s", fpr, tb)
	}
}

func TestE12LifetimeShape(t *testing.T) {
	tb := E12Lifetime(1)
	extCurrent := cellF(t, tb, 0, 3)
	fixCurrent := cellF(t, tb, 1, 3)
	if extCurrent != 15 {
		t.Fatalf("extensible vehicle not current for full life\n%s", tb)
	}
	if fixCurrent >= extCurrent {
		t.Fatalf("fixed architecture not worse\n%s", tb)
	}
	if cellF(t, tb, 1, 4) < 10 {
		t.Fatalf("fixed vehicle exposure too low\n%s", tb)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "T", Title: "title", Claim: "claim", Columns: []string{"a", "bee"}}
	tb.AddRow("x", 1.5)
	tb.AddRow(2, "y")
	s := tb.String()
	if !strings.Contains(s, "T: title") || !strings.Contains(s, "claim") {
		t.Fatalf("render:\n%s", s)
	}
	if !strings.Contains(s, "1.500") {
		t.Fatalf("float formatting:\n%s", s)
	}
}
