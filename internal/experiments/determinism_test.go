package experiments

import "testing"

// The repository's reproducibility promise: the same seed regenerates
// byte-identical tables. Spot-checked on the experiments whose workloads
// draw most heavily on the random streams.
func TestExperimentsDeterministic(t *testing.T) {
	runs := []func(uint64) *Table{
		E1BusDoS,
		E4Pseudonym,
		E11IDS,
		E13DiagnosticAccess,
		E14BusOff,
		A2BoundingThreshold,
	}
	for _, run := range runs {
		a := run(7).String()
		b := run(7).String()
		if a != b {
			t.Fatalf("experiment not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
		}
	}
}

// And distinct seeds actually perturb the stochastic experiments (guards
// against a silently ignored seed parameter).
func TestSeedReachesTheWorkloads(t *testing.T) {
	a := E1BusDoS(1).String()
	b := E1BusDoS(2).String()
	if a == b {
		t.Fatal("E1 identical across seeds — seed not plumbed through")
	}
}
