package experiments

import (
	"autosec/internal/can"
	"autosec/internal/ethernet"
	"autosec/internal/gateway"
	"autosec/internal/ids"
	"autosec/internal/netif"
	"autosec/internal/sim"
	"autosec/internal/workload"
)

// E16CrossMediumGateway exercises §4's observation that new in-vehicle
// network technology (automotive Ethernet) arrives alongside — not
// instead of — the legacy buses, so the central gateway must police
// traffic that crosses media. A CAN powertrain domain and an Ethernet
// telematics domain join through one gateway speaking the netif fabric:
// telematics units reach the powertrain by tunnelling CAN frames in
// Ethernet (DoIP-style), and selected powertrain telemetry is exported
// the other way. A compromised telematics unit floods tunnel-encapsulated
// engine-torque frames; the sweep measures what each gateway
// configuration lets across the medium boundary.
func E16CrossMediumGateway(seed uint64) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "Cross-medium gateway: CAN/Ethernet fabric under attack (§4, §7)",
		Claim:   "gateways must extend across heterogeneous network technologies as Ethernet joins the legacy buses",
		Columns: []string{"configuration", "attack frames through", "legit frames through", "telemetry exported", "quarantined"},
	}
	type cfg struct {
		name   string
		setup  func(g *gateway.Gateway, eng *ids.Engine)
		reflex bool
	}
	configs := []cfg{
		{"no gateway (default allow)", func(g *gateway.Gateway, _ *ids.Engine) {
			g.DefaultAction = gateway.Allow
		}, false},
		{"coarse allow-all rule", func(g *gateway.Gateway, _ *ids.Engine) {
			g.AddRule(&gateway.Rule{Name: "coarse", From: "*", IDLo: 0, IDHi: uint32(can.MaxStandardID), Action: gateway.Allow})
		}, false},
		{"fine-grained + rate limit", func(g *gateway.Gateway, _ *ids.Engine) {
			g.AddRule(&gateway.Rule{Name: "nav-only", From: "telematics", Medium: netif.Only(netif.CAN),
				IDLo: 0x150, IDHi: 0x15F, To: []string{"powertrain"}, Action: gateway.Allow, RatePerSec: 50})
			g.AddRule(&gateway.Rule{Name: "telemetry-export", From: "powertrain",
				IDLo: 0x260, IDHi: 0x3EF, To: []string{"telematics"}, Action: gateway.Allow})
		}, false},
		{"coarse + IDS quarantine reflex", func(g *gateway.Gateway, eng *ids.Engine) {
			g.AddRule(&gateway.Rule{Name: "open", From: "*", IDLo: 0, IDHi: uint32(can.MaxStandardID), Action: gateway.Allow})
			g.AddRule(&gateway.Rule{Name: "telemetry-export", From: "powertrain",
				IDLo: 0x260, IDHi: 0x3EF, To: []string{"telematics"}, Action: gateway.Allow})
			eng.OnAlert(func(ids.Alert) { _ = g.Quarantine("telematics") })
		}, true},
	}
	for _, c := range configs {
		k := sim.NewKernel(seed)
		pt := can.NewBus(k, "powertrain", 500_000)
		sw := ethernet.NewSwitch(k, "telematics", 2*sim.Microsecond)
		ptM := can.Netif(pt)
		ethM := ethernet.Netif(sw, 1)

		g := gateway.New(k, "central")
		_ = g.AttachDomain("powertrain", ptM)
		_ = g.AttachDomain("telematics", ethM)

		// Powertrain traffic + IDS (trained with the legit cross-medium
		// nav message in its spec baseline, as in E8).
		_, stopTraffic := workload.StartSenders(k, pt, workload.PowertrainMatrix(), 0.01)
		eng := ids.NewEngine(ids.NewFrequencyDetector(), ids.NewSpecDetector())
		clean := workload.SyntheticTrace(workload.PowertrainMatrix(), 10*sim.Second, seed, 0.01)
		appendPeriodic(clean, 0x155, 100*sim.Millisecond, 4, 10*sim.Second)
		eng.Train(clean.Netif())
		eng.Attach(ptM)

		c.setup(g, eng)

		// Monitor on the CAN side counts what crossed the boundary.
		attackThrough, legitThrough := 0, 0
		mon := can.NewController("monitor")
		pt.Attach(mon)
		mon.OnReceive(func(_ sim.Time, f *can.Frame, sender *can.Controller) {
			switch {
			case f.ID == 0x0C0 && sender.Name != "engine":
				attackThrough++
			case f.ID == 0x155:
				legitThrough++
			}
		})

		// Sink on the Ethernet side counts exported telemetry: tunnel
		// frames whose inner CAN ID is in the export range. (Broadcast
		// tunnel frames injected by the telematics units themselves carry
		// inner IDs outside it, so they never count.)
		exported := 0
		sink, _ := ethM.Open("telemetry-sink")
		sink.OnReceive(func(_ sim.Time, f *netif.Frame) {
			var inner netif.Frame
			if netif.IsTunnel(f) && netif.Decapsulate(&inner, f) == nil &&
				inner.ID >= 0x260 && inner.ID <= 0x3EF {
				exported++
			}
		})

		// Legit telematics unit: nav request 0x155 at 10 Hz, tunnelled.
		nav, _ := ethM.Open("nav")
		var navScratch, navOut netif.Frame
		var navBuf []byte
		k.Every(0, 100*sim.Millisecond, func() {
			navScratch = netif.Frame{Medium: netif.CAN, ID: 0x155, Priority: 0x155, Payload: make([]byte, 4)}
			netif.Encapsulate(&navOut, &navScratch, &navBuf)
			_ = nav.Send(&navOut)
		})
		// Compromised head unit: engine-torque frames at 1 kHz, tunnelled.
		atk, _ := ethM.Open("headunit")
		var atkScratch, atkOut netif.Frame
		var atkBuf []byte
		k.Every(0, sim.Millisecond, func() {
			atkScratch = netif.Frame{Medium: netif.CAN, ID: 0x0C0, Priority: 0x0C0, Payload: make([]byte, 8)}
			netif.Encapsulate(&atkOut, &atkScratch, &atkBuf)
			_ = atk.Send(&atkOut)
		})

		_ = k.RunUntil(10 * sim.Second)
		stopTraffic()

		quar := "no"
		if g.Quarantined("telematics") {
			quar = "yes"
		}
		t.AddRow(c.name, attackThrough, legitThrough, exported, quar)
	}
	return t
}
