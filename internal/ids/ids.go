// Package ids implements in-vehicle network intrusion detection — the
// compensating control the paper's Secure Networks layer relies on for
// IVN protocols that "lack security mechanisms". Four detector families
// cover the classic CAN attack classes:
//
//   - Frequency: windowed per-ID rate bounds (floods, message suspension)
//   - Interval: per-frame inter-arrival checks (injection between
//     legitimate periodic frames)
//   - Entropy: payload byte-entropy drift (fuzzing)
//   - Specification: ID whitelist, DLC and signal-range rules (malformed
//     and out-of-protocol traffic)
//
// Detectors are trained on clean traffic and then observe a live stream;
// they are installable and replaceable at runtime through the policy
// layer, which is the extensibility story of experiment E11/E12.
//
// Detectors consume the netif transport fabric, not any one medium:
// traffic is keyed by (medium, identifier), so the same statistical
// models watch CAN IDs, LIN frames, FlexRay slots and Ethernet
// EtherTypes. On CAN-only traffic the keys order and compare exactly as
// the historical per-can.ID state did.
package ids

import (
	"fmt"
	"math"
	"sort"

	"autosec/internal/netif"
	"autosec/internal/sim"
)

// Alert is one detector finding.
type Alert struct {
	At       sim.Time
	Detector string
	Medium   netif.Kind
	ID       uint32
	Reason   string
}

func (a Alert) String() string {
	if a.Medium == netif.CAN {
		// The historical CAN rendering, byte-for-byte.
		return fmt.Sprintf("[%v] %s id=%#x: %s", a.At, a.Detector, a.ID, a.Reason)
	}
	return fmt.Sprintf("[%v] %s %s id=%#x: %s", a.At, a.Detector, a.Medium, a.ID, a.Reason)
}

// alertFor builds an alert for a traffic key.
func alertFor(at sim.Time, detector string, k netif.Key, reason string) Alert {
	return Alert{At: at, Detector: detector, Medium: k.Kind(), ID: k.ID(), Reason: reason}
}

// Detector is a streaming intrusion detector. Train consumes clean
// reference traffic; Observe consumes one live record and returns any
// alerts it raises.
type Detector interface {
	Name() string
	Train(trace *netif.Trace)
	Observe(rec netif.Record) []Alert
}

// FrequencyDetector learns each identifier's frame rate over fixed
// windows and alerts when a live window's count leaves the learned band.
type FrequencyDetector struct {
	// Window is the counting window (default 100ms).
	Window sim.Duration
	// Slack widens the learned [min,max] count band multiplicatively.
	Slack float64

	bounds map[netif.Key][2]float64 // learned min/max per window
	// boundKeys holds the learned keys sorted ascending: the window-close
	// sweep walks this slice, not the map, so alert order is deterministic
	// (and, on CAN traffic, identical to ascending-ID order).
	boundKeys  []netif.Key
	winStart   sim.Time
	counts     map[netif.Key]int
	suppressed map[netif.Key]bool
}

// NewFrequencyDetector creates a detector with a 100ms window and 50%
// slack.
func NewFrequencyDetector() *FrequencyDetector {
	return &FrequencyDetector{Window: 100 * sim.Millisecond, Slack: 0.5}
}

// Name implements Detector.
func (d *FrequencyDetector) Name() string { return "frequency" }

// Train implements Detector.
func (d *FrequencyDetector) Train(trace *netif.Trace) {
	d.bounds = make(map[netif.Key][2]float64)
	if trace.Len() == 0 {
		return
	}
	// Min/max scan rather than first/last: training traces assembled from
	// several sources are not necessarily time-sorted.
	start, end := trace.Records[0].At, trace.Records[0].At
	for _, r := range trace.Records {
		if r.At < start {
			start = r.At
		}
		if r.At > end {
			end = r.At
		}
	}
	nWin := int((end-start)/d.Window) + 1
	perWin := make(map[netif.Key][]int)
	for k := range countKeys(trace) {
		perWin[k] = make([]int, nWin)
	}
	for i := range trace.Records {
		r := &trace.Records[i]
		w := int((r.At - start) / d.Window)
		perWin[r.Frame.Key()][w]++
	}
	for k, wins := range perWin {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range wins {
			fc := float64(c)
			if fc < lo {
				lo = fc
			}
			if fc > hi {
				hi = fc
			}
		}
		// The ±1 absolute margin absorbs window-boundary drift: a message
		// whose period equals the window lands 0 or 2 times in a window
		// depending on phase, without that being an anomaly.
		d.bounds[k] = [2]float64{lo*(1-d.Slack) - 1, hi*(1+d.Slack) + 1}
	}
	d.boundKeys = d.boundKeys[:0]
	for k := range d.bounds {
		d.boundKeys = append(d.boundKeys, k)
	}
	sort.Slice(d.boundKeys, func(i, j int) bool { return d.boundKeys[i] < d.boundKeys[j] })
	d.counts = make(map[netif.Key]int)
	d.suppressed = make(map[netif.Key]bool)
}

func countKeys(trace *netif.Trace) map[netif.Key]bool {
	out := make(map[netif.Key]bool)
	for i := range trace.Records {
		out[trace.Records[i].Frame.Key()] = true
	}
	return out
}

// Observe implements Detector.
func (d *FrequencyDetector) Observe(rec netif.Record) []Alert {
	if d.counts == nil {
		d.counts = make(map[netif.Key]int)
		d.suppressed = make(map[netif.Key]bool)
	}
	var alerts []Alert
	if rec.At-d.winStart >= d.Window {
		// Close the window: check all learned keys, including silent ones
		// (suspension attack shows as counts below the learned minimum).
		for _, k := range d.boundKeys {
			b := d.bounds[k]
			c := float64(d.counts[k])
			switch {
			case c > b[1]:
				alerts = append(alerts, alertFor(rec.At, d.Name(), k,
					fmt.Sprintf("rate high: %d > %.1f per window", int(c), b[1])))
			case c < b[0] && !d.suppressed[k]:
				// Alert once per suppression episode to bound alert volume.
				d.suppressed[k] = true
				alerts = append(alerts, alertFor(rec.At, d.Name(), k,
					fmt.Sprintf("rate low: %d < %.1f per window", int(c), b[0])))
			default:
				d.suppressed[k] = false
			}
		}
		// Clear in place rather than reallocating: the observe hot path
		// must stay allocation-free at steady state.
		clear(d.counts)
		d.winStart = rec.At
	}
	d.counts[rec.Frame.Key()]++
	return alerts
}

// IntervalDetector learns each periodic identifier's minimum inter-arrival
// time and alerts on frames arriving much earlier than the learned period
// — the signature of injected frames racing the legitimate sender.
type IntervalDetector struct {
	// MinFraction of the learned period below which a frame is anomalous.
	MinFraction float64

	period map[netif.Key]sim.Duration
	lastAt map[netif.Key]sim.Time
}

// NewIntervalDetector creates a detector alerting below half the learned
// period.
func NewIntervalDetector() *IntervalDetector {
	return &IntervalDetector{MinFraction: 0.5}
}

// Name implements Detector.
func (d *IntervalDetector) Name() string { return "interval" }

// Train implements Detector.
func (d *IntervalDetector) Train(trace *netif.Trace) {
	d.period = make(map[netif.Key]sim.Duration)
	d.lastAt = make(map[netif.Key]sim.Time)
	for k := range countKeys(trace) {
		ivs := trace.Intervals(k)
		if len(ivs) < 3 {
			continue // aperiodic or too rare to model
		}
		// Use the median as the period estimate.
		var s sim.Summary
		for _, iv := range ivs {
			s.Observe(float64(iv))
		}
		d.period[k] = sim.Duration(s.Quantile(0.5))
	}
}

// Observe implements Detector.
func (d *IntervalDetector) Observe(rec netif.Record) []Alert {
	if d.lastAt == nil {
		d.lastAt = make(map[netif.Key]sim.Time)
	}
	k := rec.Frame.Key()
	defer func() { d.lastAt[k] = rec.At }()
	p, modelled := d.period[k]
	last, seen := d.lastAt[k]
	if !modelled || !seen {
		return nil
	}
	iv := rec.At - last
	if float64(iv) < d.MinFraction*float64(p) {
		return []Alert{alertFor(rec.At, d.Name(), k,
			fmt.Sprintf("interval %v < %.0f%% of period %v", iv, d.MinFraction*100, p))}
	}
	return nil
}

// EntropyDetector tracks per-ID payload byte entropy over sliding batches
// and alerts when a batch's entropy departs the trained band. Fuzzing
// (random payloads) drives entropy up; stuck/replayed payloads drive it
// to zero.
type EntropyDetector struct {
	// BatchSize is the number of frames per entropy estimate.
	BatchSize int
	// Tolerance is the allowed absolute deviation in bits.
	Tolerance float64

	trained map[netif.Key]float64
	buf     map[netif.Key][][]byte
}

// NewEntropyDetector creates a detector with batch 32, tolerance 1.2 bits.
func NewEntropyDetector() *EntropyDetector {
	return &EntropyDetector{BatchSize: 32, Tolerance: 1.2}
}

// Name implements Detector.
func (d *EntropyDetector) Name() string { return "entropy" }

// payloadEntropy is the byte-level Shannon entropy of the payloads.
func payloadEntropy(payloads [][]byte) float64 {
	var hist [256]int
	total := 0
	for _, p := range payloads {
		for _, b := range p {
			hist[b]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Train implements Detector.
func (d *EntropyDetector) Train(trace *netif.Trace) {
	d.trained = make(map[netif.Key]float64)
	d.buf = make(map[netif.Key][][]byte)
	byKey := make(map[netif.Key][][]byte)
	for i := range trace.Records {
		r := &trace.Records[i]
		byKey[r.Frame.Key()] = append(byKey[r.Frame.Key()], r.Frame.Payload)
	}
	for k, ps := range byKey {
		if len(ps) < d.BatchSize {
			continue
		}
		// Train on the same statistic Observe computes: the mean entropy
		// of BatchSize-frame batches. Whole-trace entropy would run higher
		// than any batch (counters sweep more of their range over a long
		// trace) and make every clean batch look anomalous.
		sum, n := 0.0, 0
		for i := 0; i+d.BatchSize <= len(ps); i += d.BatchSize {
			sum += payloadEntropy(ps[i : i+d.BatchSize])
			n++
		}
		d.trained[k] = sum / float64(n)
	}
}

// Observe implements Detector. The record must own its payload (taps
// clone before feeding the engine): batches retain payload references.
func (d *EntropyDetector) Observe(rec netif.Record) []Alert {
	if d.buf == nil {
		d.buf = make(map[netif.Key][][]byte)
	}
	k := rec.Frame.Key()
	ref, modelled := d.trained[k]
	if !modelled {
		return nil
	}
	d.buf[k] = append(d.buf[k], rec.Frame.Payload)
	if len(d.buf[k]) < d.BatchSize {
		return nil
	}
	h := payloadEntropy(d.buf[k])
	d.buf[k] = nil
	if math.Abs(h-ref) > d.Tolerance {
		return []Alert{alertFor(rec.At, d.Name(), k,
			fmt.Sprintf("entropy %.2f vs trained %.2f bits", h, ref))}
	}
	return nil
}

// SignalRange constrains one payload byte of an identifier.
type SignalRange struct {
	Byte   int
	Lo, Hi byte
}

// SpecDetector enforces an explicit communication-matrix specification:
// known identifiers, expected DLC, and per-byte signal ranges. Unlike the
// statistical detectors it needs no training and has (by construction)
// no false positives on conforming traffic.
type SpecDetector struct {
	// DLC maps each permitted traffic key to its expected payload length
	// (-1: any). Keys are built with netif.MakeKey.
	DLC map[netif.Key]int
	// Ranges lists signal constraints per key.
	Ranges map[netif.Key][]SignalRange
	// AlertUnknownID controls whether unlisted identifiers alert.
	AlertUnknownID bool
}

// NewSpecDetector creates an empty specification.
func NewSpecDetector() *SpecDetector {
	return &SpecDetector{DLC: make(map[netif.Key]int), Ranges: make(map[netif.Key][]SignalRange), AlertUnknownID: true}
}

// Name implements Detector.
func (d *SpecDetector) Name() string { return "spec" }

// Train implements Detector. SpecDetector derives the ID whitelist and
// DLCs from clean traffic when they were not configured explicitly.
func (d *SpecDetector) Train(trace *netif.Trace) {
	if len(d.DLC) > 0 {
		return // explicitly configured: training is a no-op
	}
	for i := range trace.Records {
		r := &trace.Records[i]
		k := r.Frame.Key()
		if cur, ok := d.DLC[k]; !ok {
			d.DLC[k] = len(r.Frame.Payload)
		} else if cur != len(r.Frame.Payload) {
			d.DLC[k] = -1
		}
	}
}

// Observe implements Detector.
func (d *SpecDetector) Observe(rec netif.Record) []Alert {
	k := rec.Frame.Key()
	want, known := d.DLC[k]
	if !known {
		if d.AlertUnknownID {
			return []Alert{alertFor(rec.At, d.Name(), k, "unknown identifier")}
		}
		return nil
	}
	if want >= 0 && len(rec.Frame.Payload) != want {
		return []Alert{alertFor(rec.At, d.Name(), k,
			fmt.Sprintf("DLC %d, expected %d", len(rec.Frame.Payload), want))}
	}
	for _, sr := range d.Ranges[k] {
		if sr.Byte >= len(rec.Frame.Payload) {
			continue
		}
		v := rec.Frame.Payload[sr.Byte]
		if v < sr.Lo || v > sr.Hi {
			return []Alert{alertFor(rec.At, d.Name(), k,
				fmt.Sprintf("byte %d value %#x outside [%#x,%#x]", sr.Byte, v, sr.Lo, sr.Hi))}
		}
	}
	return nil
}
