package core

import "strings"

// SecurityIncidents counts the audit-log entries that record an actual
// security incident on this vehicle: every IDS alert plus every gateway
// quarantine drop. Routine policy denials and rate limiting are audited
// but not counted — under a deny-by-default rule set they fire on benign
// traffic, and this counter exists to answer "did something attack-like
// happen to this vehicle?", the question the fleet flight recorder asks
// when deciding which vehicles must keep their traces regardless of
// sampling.
func (v *Vehicle) SecurityIncidents() int {
	n := 0
	entries := v.Audit.Entries()
	for i := range entries {
		e := &entries[i]
		switch e.Source {
		case "ids":
			n++
		case "gateway":
			if strings.HasPrefix(e.Event, "quarantined") {
				n++
			}
		}
	}
	return n
}
