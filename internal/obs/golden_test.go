package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"autosec/internal/can"
	"autosec/internal/core"
	"autosec/internal/keyless"
	"autosec/internal/obs"
	"autosec/internal/sim"
	"autosec/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// goldenScenario runs the canonical seed-1 keyless-relay scenario into a
// fresh tracer: 200ms of normal multi-domain traffic (kernel + can +
// gateway events), a thief implant injecting an unknown ID on the
// powertrain (ids alerts), and a relay attack against the distance-bound
// PKES followed by a legitimate unlock (keyless verdicts). Everything
// runs on one seeded kernel, so the resulting trace is byte-deterministic.
func goldenScenario(t *testing.T) *obs.Tracer {
	t.Helper()
	const vin = "GOLDEN-TRACE-01"
	tr := obs.NewTracer(1 << 14)
	v, err := core.NewVehicle(core.Config{VIN: vin, Seed: 1})
	if err != nil {
		t.Fatalf("NewVehicle: %v", err)
	}
	v.Instrument(tr, nil)
	v.TrainIDS(workload.SyntheticTrace(workload.PowertrainMatrix(), 5*sim.Second, 1, 0.01).Netif())
	v.StartTraffic()

	implant := can.NewController("thief-implant")
	v.Buses[core.DomainPowertrain].Attach(implant)
	var stopImplant func()
	v.Kernel.At(50*sim.Millisecond, func() {
		stopImplant = can.PeriodicSender(v.Kernel, implant,
			can.Frame{ID: 0x666, Data: []byte{0xDE, 0xAD}}, 5*sim.Millisecond, 0)
	})

	// Same key derivation as core.NewVehicle, so the fob pairs with
	// v.Keyless.
	var pkesKey [16]byte
	copy(pkesKey[:], vin+"-pkes-key------")
	fob := keyless.NewFob(pkesKey)
	relay := &keyless.Relay{
		PosA:    keyless.Position{X: 1},
		PosB:    keyless.Position{X: 59.5},
		Latency: 10 * sim.Microsecond,
	}
	v.Kernel.At(100*sim.Millisecond, func() {
		v.Keyless.DistanceBounding = true
		v.Keyless.RTTBudget = 2*sim.Millisecond + 200*sim.Nanosecond
		fob.Pos = keyless.Position{X: 60} // fob indoors: relay attempt
		_, _ = v.Keyless.TryRelayUnlock(relay, fob)
		fob.Pos = keyless.Position{X: 1} // owner at the door
		_, _ = v.Keyless.TryUnlock(fob)
	})

	if err := v.Kernel.RunUntil(200 * sim.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if stopImplant != nil {
		stopImplant()
	}
	v.StopTraffic()
	if tr.Dropped() != 0 {
		t.Fatalf("ring too small for golden scenario: %d events dropped", tr.Dropped())
	}
	return tr
}

// TestGoldenChromeTrace pins the Chrome trace_event export of the
// seed-1 keyless-relay scenario byte-for-byte, and checks the structural
// claims the export makes: valid JSON, and events from at least the four
// core subsystems.
func TestGoldenChromeTrace(t *testing.T) {
	var out bytes.Buffer
	if err := goldenScenario(t).WriteChromeTrace(&out); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	if !json.Valid(out.Bytes()) {
		t.Fatalf("export is not valid JSON")
	}
	var events []map[string]any
	if err := json.Unmarshal(out.Bytes(), &events); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	cats := map[string]bool{}
	for _, e := range events {
		if ph, _ := e["ph"].(string); ph == "M" {
			continue
		}
		if cat, _ := e["cat"].(string); cat != "" {
			cats[cat] = true
		}
	}
	for _, want := range []string{"kernel", "can", "gateway", "ids", "keyless"} {
		if !cats[want] {
			t.Errorf("no events from subsystem %q in golden trace (have %v)", want, cats)
		}
	}

	golden := filepath.Join("testdata", "golden_relay_trace.json")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
		t.Logf("updated %s (%d events)", golden, len(events))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("Chrome trace drifted from golden %s: got %d bytes, want %d bytes; rerun with -update if intentional",
			golden, out.Len(), len(want))
	}
}

// TestGoldenChromeTraceIsDeterministic rebuilds the scenario from
// scratch and demands byte-identical output — the property the golden
// file (and CI's obs-smoke job) relies on.
func TestGoldenChromeTraceIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenScenario(t).WriteChromeTrace(&a); err != nil {
		t.Fatalf("first export: %v", err)
	}
	if err := goldenScenario(t).WriteChromeTrace(&b); err != nil {
		t.Fatalf("second export: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two identical runs produced different traces (%d vs %d bytes)", a.Len(), b.Len())
	}
}
