package experiments

import (
	"fmt"
	"math"

	"autosec/internal/can"
	"autosec/internal/core"
	"autosec/internal/sim"
	"autosec/internal/uds"
)

// E13DiagnosticAccess quantifies the diagnostic attack surface behind the
// paper's remote-exploitation references [15, 16]: UDS SecurityAccess is
// the only gate in front of reflashing and privileged routines, so its
// seed/key algorithm and lockout policy decide the cost of entry. The
// sniffing attack is executed live against the composed vehicle; the
// brute-force rows are computed from the implementation's lockout
// parameters.
func E13DiagnosticAccess(seed uint64) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "UDS SecurityAccess: algorithm strength vs attacker effort (refs [15,16])",
		Claim:   "complex functionalities are gated by diagnostic authentication; weak seed/key schemes void the gate",
		Columns: []string{"algorithm", "attack", "exchanges observed", "unlocked", "expected effort"},
	}

	// Live sniffing attack against the weak algorithm.
	weak := uds.WeakXOR{Constant: 0x5EC0DE00 ^ uint32(seed)}
	v, err := core.NewVehicle(core.Config{VIN: "E13-VIN-01", Seed: seed})
	if err != nil {
		panic(err)
	}
	d := v.AttachDiagnostics(core.DomainInfotainment, weak)

	var sniffedSeed, sniffedKey []byte
	v.Buses[core.DomainInfotainment].Sniff(func(_ sim.Time, f *can.Frame, _ *can.Controller, _ bool) {
		if len(f.Data) >= 7 && f.Data[1] == 0x67 && f.Data[2] == 0x01 {
			sniffedSeed = append([]byte(nil), f.Data[3:7]...)
		}
		if len(f.Data) >= 7 && f.Data[1] == 0x27 && f.Data[2] == 0x02 {
			sniffedKey = append([]byte(nil), f.Data[3:7]...)
		}
	})

	// The workshop unlocks once while the attacker listens.
	if _, err := v.RunDiag(d.Tester, []byte{uds.SvcSessionControl, uds.SessionExtended}); err != nil {
		panic(err)
	}
	if err := v.RunUnlock(d.Tester, 1, weak); err != nil {
		panic(err)
	}

	sniffUnlocked := "no"
	if sniffedSeed != nil && sniffedKey != nil {
		var c uint32
		for i := 0; i < 4; i++ {
			c = c<<8 | uint32(sniffedSeed[i]^sniffedKey[i])
		}
		recovered := uds.WeakXOR{Constant: c - 1} // level-1 offset
		// Fresh vehicle of the same model line.
		v2, err := core.NewVehicle(core.Config{VIN: "E13-VIN-02", Seed: seed + 1})
		if err != nil {
			panic(err)
		}
		_ = v2.AttachDiagnostics(core.DomainInfotainment, weak)
		intruder := v2.NewIntruderTester(core.DomainInfotainment)
		if _, err := v2.RunDiag(intruder, []byte{uds.SvcSessionControl, uds.SessionExtended}); err == nil {
			if err := v2.RunUnlock(intruder, 1, recovered); err == nil {
				sniffUnlocked = "yes"
			}
		}
	}
	t.AddRow("weak-xor", "sniff one exchange, derive constant", 1, sniffUnlocked, "offline XOR")

	// Brute force against each algorithm, from the lockout parameters:
	// 3 attempts per 10s lockout window -> 0.3 guesses/s.
	guessesPerSecond := 3.0 / 10.0
	keySpace := math.Pow(2, 32) // 4-byte keys on the wire
	expected := keySpace / 2 / guessesPerSecond
	t.AddRow("weak-xor", "online brute force (no sniffing)", 0, "eventually",
		fmt.Sprintf("%.0f years", expected/3600/24/365))
	t.AddRow("she-cmac", "sniff any number of exchanges", "n", "no", "CMAC preimage (2^127)")
	t.AddRow("she-cmac", "online brute force", 0, "eventually",
		fmt.Sprintf("%.0f years (and per-seed)", expected/3600/24/365))
	return t
}
