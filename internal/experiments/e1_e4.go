package experiments

import (
	"fmt"

	"autosec/internal/can"
	"autosec/internal/fleet"
	"autosec/internal/ids"
	"autosec/internal/ieee1609"
	"autosec/internal/sidechannel"
	"autosec/internal/sim"
	"autosec/internal/v2x"
	"autosec/internal/workload"
)

// E1BusDoS quantifies §4.1's availability attack model on the IVN: a
// compromised node floods the highest-priority identifier and measures
// what happens to legitimate traffic latency and to detection.
func E1BusDoS(seed uint64) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "CAN bus denial of service (availability attack, §4.1)",
		Claim:   "an attacker can deny the user or system of a service by flooding the IVN",
		Columns: []string{"attack rate (fps)", "bus load", "victim p99 latency (ms)", "victim miss rate", "victim dropped", "IDS alerts"},
	}
	for _, atkPeriod := range []sim.Duration{0, 2 * sim.Millisecond, 500 * sim.Microsecond, 200 * sim.Microsecond} {
		k := sim.NewKernel(seed)
		bus := can.NewBus(k, "powertrain", 500_000)

		// Legit periodic traffic from the standard matrix.
		_, stopTraffic := workload.StartSenders(k, bus, workload.PowertrainMatrix(), 0.01)

		// The monitored victim message: 10ms period, deadline = period.
		victim := can.NewController("victim")
		victim.MaxQueue = 16
		bus.Attach(victim)
		var lat sim.Summary
		lat.Reserve(1000) // one sample per 10ms period over the 10s horizon
		misses, sends := 0, 0
		k.Every(0, 10*sim.Millisecond, func() {
			sends++
			sent := k.Now()
			err := victim.Send(can.Frame{ID: 0x0A0, Data: make([]byte, 8)}, func(at sim.Time) {
				l := at - sent
				lat.Observe(l.Millis())
				if l > 10*sim.Millisecond {
					misses++
				}
			})
			if err != nil {
				misses++
			}
		})

		// IDS trained on clean traffic.
		eng := ids.NewEngine(ids.NewFrequencyDetector(), ids.NewSpecDetector())
		clean := workload.SyntheticTrace(workload.PowertrainMatrix(), 10*sim.Second, seed, 0.01)
		appendPeriodic(clean, 0x0A0, 10*sim.Millisecond, 8, 10*sim.Second)
		eng.Train(clean.Netif())
		eng.Attach(can.Netif(bus))

		// The attacker floods ID 0x000 (wins every arbitration round).
		var stopAtk func()
		if atkPeriod > 0 {
			atk := can.NewController("attacker")
			atk.MaxQueue = 4
			bus.Attach(atk)
			stopAtk = can.PeriodicSender(k, atk, can.Frame{ID: 0x000, Data: make([]byte, 8)}, atkPeriod, 0)
		}

		_ = k.RunUntil(10 * sim.Second)
		stopTraffic()
		if stopAtk != nil {
			stopAtk()
		}

		rate := "0"
		if atkPeriod > 0 {
			rate = fmt.Sprintf("%d", int(sim.Second/atkPeriod))
		}
		missRate := float64(misses) / float64(sends)
		t.AddRow(rate, bus.Load(), lat.Quantile(0.99), missRate,
			victim.FramesDropped.Value, len(eng.Alerts))
	}
	return t
}

// appendPeriodic extends a training trace with a periodic message so the
// statistical detectors learn it as part of the baseline.
func appendPeriodic(tr *can.Trace, id can.ID, period sim.Duration, size int, dur sim.Duration) {
	for at := sim.Time(0); at < dur; at += period {
		tr.Records = append(tr.Records, can.Record{At: at, Frame: can.Frame{ID: id, Data: make([]byte, size)}})
	}
}

// E2SideChannel quantifies §4.2's side-channel leakage claim: traces
// needed to extract an AES key at increasing noise, with and without the
// first-order masking countermeasure.
func E2SideChannel(seed uint64) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "CPA key extraction from the SHE power model (§4.2)",
		Claim:   "with physical access, side-channel leakage exposes cryptographic keys; countermeasures raise the cost",
		Columns: []string{"noise sigma", "impl", "attack", "traces to full key", "key recovered"},
	}
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	type setup struct {
		sigma  float64
		masked bool
		attack func(*sidechannel.TraceSet) [16]byte
		name   string
		limit  int
	}
	setups := []setup{
		{0.5, false, sidechannel.CPA, "1st-order CPA", 16384},
		{2.0, false, sidechannel.CPA, "1st-order CPA", 16384},
		{4.0, false, sidechannel.CPA, "1st-order CPA", 65536},
		{0.5, true, sidechannel.CPA, "1st-order CPA", 8192},
		{0.5, true, sidechannel.SecondOrderCPA, "2nd-order CPA", 65536},
	}
	for i, s := range setups {
		cfg := sidechannel.Config{NoiseSigma: s.sigma, Masked: s.masked}
		rng := sim.NewStream(seed+uint64(i), "e2")
		n := sidechannel.TracesToRecover(key, cfg, s.attack, 64, s.limit, func(n int) *sidechannel.TraceSet {
			return sidechannel.Acquire(key, n, cfg, rng)
		})
		impl := "unmasked"
		if s.masked {
			impl = "masked"
		}
		needed := fmt.Sprintf("%d", n)
		recovered := "yes"
		if n == 0 {
			needed = fmt.Sprintf(">%d", s.limit)
			recovered = "no"
		}
		t.AddRow(s.sigma, impl, s.name, needed, recovered)
	}
	return t
}

// E3FleetCompromise quantifies §4.2's bulk-production claim: one key,
// extracted from one vehicle, applied fleet-wide under each provisioning
// policy.
func E3FleetCompromise(seed uint64) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Fleet compromise from one extracted key (§4.2)",
		Claim:   "one compromised ECU can lead to severe security compromise of a whole class",
		Columns: []string{"provisioning", "fleet size", "models", "compromised", "fraction"},
	}
	var master [16]byte
	for i := range master {
		master[i] = byte(seed >> (i % 8 * 8))
	}
	master[0] |= 1
	const size, models = 1000, 10
	for _, pol := range []fleet.Policy{fleet.SharedKey, fleet.PerModel, fleet.PerDevice} {
		f := fleet.New(size, models, pol, master)
		res := f.AssessCompromise(0)
		t.AddRow(pol.String(), size, models, res.Compromised, res.Fraction())
	}
	return t
}

// E4Pseudonym quantifies §4.2's security/privacy conundrum: pseudonym
// rotation defeats naive tracking but costs certificates, and a
// continuity-linking tracker claws back much of the loss under dense
// coverage.
func E4Pseudonym(seed uint64) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Pseudonym rotation vs location tracking (§4.2)",
		Claim:   "trusting in-field communications requires authentication, which conflicts with the sender's privacy",
		Columns: []string{"rotation", "tracker", "tracking success", "tracks", "certs/hour"},
	}
	run := func(rotation sim.Duration, linkWindow sim.Duration, linkRadius float64) (float64, int) {
		k := sim.NewKernel(seed)
		root, err := ieee1609.NewRootAuthority("root", []ieee1609.PSID{ieee1609.PSIDBasicSafety}, 0, sim.Hour*1000)
		if err != nil {
			panic(err)
		}
		f := v2x.NewField(k, v2x.Radio{RangeM: 300, LossProb: 0.05, PropDelayPerM: 4}, v2x.DefaultVerifyModel())
		pool, err := ieee1609.NewPseudonymPool(root, 64, []ieee1609.PSID{ieee1609.PSIDBasicSafety}, 0, sim.Hour*1000, rotation)
		if err != nil {
			panic(err)
		}
		veh := f.AddVehicle("target", v2x.Position{}, pool, ieee1609.NewStore(root.Cert))
		veh.SetVelocity(20, 0)
		tr := &v2x.Tracker{RangeM: 300, LinkWindow: linkWindow, LinkRadius: linkRadius}
		for x := 0.0; x <= 1300; x += 400 {
			tr.Antennas = append(tr.Antennas, v2x.Position{X: x})
		}
		tr.Attach(f)
		stop := veh.StartBeacon(100 * sim.Millisecond)
		_ = k.RunUntil(60 * sim.Second)
		stop()
		return tr.TrackingSuccess(60 * sim.Second), len(tr.Reconstruct())
	}
	rotations := []sim.Duration{0, 30 * sim.Second, 5 * sim.Second, sim.Second}
	for _, rot := range rotations {
		label := "none"
		certsPerHour := 1.0
		effRot := rot
		if rot == 0 {
			effRot = sim.Hour * 1000
		} else {
			label = rot.String()
			certsPerHour = float64(sim.Hour) / float64(rot)
		}
		naive, nt := run(effRot, 0, 0)
		t.AddRow(label, "naive", naive, nt, fmt.Sprintf("%.0f", certsPerHour))
		linked, lt := run(effRot, sim.Second, 50)
		t.AddRow(label, "continuity", linked, lt, fmt.Sprintf("%.0f", certsPerHour))
	}
	return t
}
