package core

import "testing"

// The lifecycle benchmark pair quantifies why VehiclePool exists: a
// fresh construction against a pooled reset of the same configuration.
// Fleet sweeps multiply the difference by population size, so track the
// pair when touching NewVehicle or the Reset path.

func BenchmarkNewVehicleFresh(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewVehicle(Config{VIN: "B", Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolAcquireRelease(b *testing.B) {
	p := NewVehiclePool(Config{VIN: "B", Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v, err := p.Acquire(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		p.Release(v)
	}
}
