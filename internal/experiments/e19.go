package experiments

import (
	"encoding/binary"
	"fmt"

	"autosec/internal/can"
	"autosec/internal/ethernet"
	"autosec/internal/gateway"
	"autosec/internal/ids"
	"autosec/internal/sim"
	"autosec/internal/workload"
	"autosec/internal/zonal"
)

// E19KernelPar reruns the E17 zonal attack-and-containment scenario on
// the parallel simulation engine: one conservative event kernel per zone
// (sim.KernelGroup), synchronized only at Ethernet-backbone crossings
// with the tunnel latency as lookahead. The table is the correctness
// artifact of the parallel engine — every measurement (attack frames
// through, quarantine reflex, backbone load, end-to-end latency) is
// byte-identical at any worker count, so the golden file pins both the
// scenario physics and the determinism of the windowed synchronization
// protocol. Wall-clock speedup is deliberately absent (machine-
// dependent); it lives in BenchmarkE19KernelPar and benchreport
// -kernelpar.
func E19KernelPar(seed uint64) *Table {
	return E19KernelParWith(seed, []int{2, 4, 8, 16}, 1)
}

// E19KernelParWith runs the sweep over custom zone counts at the given
// worker count. benchreport's -kernelpar flag feeds the worker count
// through here; the golden table uses workers=1 (the serial reference),
// and any other value must reproduce it byte for byte.
func E19KernelParWith(seed uint64, zoneCounts []int, workers int) *Table {
	t := &Table{
		ID:    "E19",
		Title: "Parallel per-zone kernels: conservative backbone-lookahead sync (§7)",
		Claim: "partitioning the vehicle at the backbone runs zones concurrently with byte-identical results at any worker count; intra-zone traffic never synchronizes",
		Columns: []string{"topology", "events", "attack through", "legit through",
			"backbone frames", "backbone deliveries", "p95 e2e latency (us)", "quarantined", "others ok"},
	}
	hop := 2 * sim.Microsecond
	for _, zones := range zoneCounts {
		g := sim.NewKernelGroup(seed, ethernet.TunnelLookahead(hop, ethernet.DefaultLinkBps))
		f := zonal.NewPartitioned(g, hop, ethernet.DefaultLinkBps)
		zs := make([]*zonal.Zone, zones)
		for i := range zs {
			zs[i], _ = f.AddZone(fmt.Sprintf("z%d", i))
		}
		// Same placement policy as E17 and core's zonal build: powertrain
		// fronts the first zone, chassis the middle, infotainment the last.
		// Each bus lives on its owning zone's kernel, so its arbitration
		// and workload events dispatch concurrently with other zones.
		ptZone, chZone, infoZone := zs[0], zs[(zones-1)/2], zs[zones-1]
		pt := can.NewBus(ptZone.Kernel(), "powertrain-bus", 500_000)
		ch := can.NewBus(chZone.Kernel(), "chassis-bus", 500_000)
		info := can.NewBus(infoZone.Kernel(), "infotainment-bus", 500_000)
		ptM, chM, infoM := can.Netif(pt), can.Netif(ch), can.Netif(info)
		_ = ptZone.AttachDomain("powertrain", ptM)
		_ = chZone.AttachDomain("chassis", chM)
		_ = infoZone.AttachDomain("infotainment", infoM)
		f.SetRules([]*gateway.Rule{
			{Name: "legacy-open", From: "infotainment", To: []string{"powertrain"}, IDLo: 0, IDHi: uint32(can.MaxStandardID), Action: gateway.Allow},
			{Name: "telemetry", From: "powertrain", To: []string{"infotainment"}, IDLo: 0x260, IDHi: 0x3EF, Action: gateway.Allow},
			{Name: "chassis-status", From: "chassis", To: []string{"powertrain"}, IDLo: 0x400, IDHi: 0x40F, Action: gateway.Allow},
		})

		// Background load on the owning kernels.
		_, stopPT := workload.StartSenders(ptZone.Kernel(), pt, workload.PowertrainMatrix(), 0.01)
		_, stopBody := workload.StartSenders(infoZone.Kernel(), info, workload.BodyMatrix(), 0.01)

		// IDS at the powertrain attachment point (zone 0's kernel). Its
		// containment reflex crosses the kernel boundary: the quarantine
		// request rides an inter-kernel message and lands one backbone
		// lookahead later, identically at any parallelism.
		eng := ids.NewEngine(ids.NewFrequencyDetector(), ids.NewSpecDetector())
		combined := append(workload.PowertrainMatrix(), workload.BodyMatrix()...)
		clean := workload.SyntheticTrace(combined, 10*sim.Second, seed, 0.01)
		appendPeriodic(clean, 0x155, 100*sim.Millisecond, 8, 10*sim.Second)
		appendPeriodic(clean, 0x405, 100*sim.Millisecond, 2, 10*sim.Second)
		eng.Train(clean.Netif())
		eng.Attach(ptM)
		var quarAt sim.Time
		quarRequested := false
		eng.OnAlert(func(ids.Alert) {
			if !quarRequested {
				quarRequested = true
				quarAt = ptZone.Kernel().Now()
				_ = f.RequestZoneQuarantine("powertrain", "infotainment")
			}
		})

		// Legit cross-zone flows. The nav ping carries its own send time in
		// the payload — a per-frame timestamp map would be cross-kernel
		// shared state, but virtual time is global, so the receiver can
		// compute end-to-end latency from the payload alone.
		nav := can.NewController("nav")
		info.Attach(nav)
		navK := infoZone.Kernel()
		navK.Every(0, 100*sim.Millisecond, func() {
			p := make([]byte, 8)
			binary.BigEndian.PutUint64(p, uint64(navK.Now()))
			_ = nav.Send(can.Frame{ID: 0x155, Data: p}, nil)
		})
		status := can.NewController("chassis-ecu")
		ch.Attach(status)
		chZone.Kernel().Every(0, 100*sim.Millisecond, func() {
			_ = status.Send(can.Frame{ID: 0x405, Data: []byte{0x05, 0x01}}, nil)
		})

		// Compromised infotainment ECU: engine-torque flood at 1 kHz from
		// t=2s, on the infotainment zone's kernel.
		mal := can.NewController("headunit")
		info.Attach(mal)
		infoZone.Kernel().Every(2*sim.Second, sim.Millisecond, func() {
			_ = mal.Send(can.Frame{ID: 0x0C0, Data: make([]byte, 8)}, nil)
		})

		// The powertrain-side monitor runs on zone 0's kernel and touches
		// only member-0 state (quarAt is written by the IDS reflex on the
		// same kernel); fabric-wide aggregates are read after the run.
		attackThrough, legitThrough, chassisAfterQuar := 0, 0, 0
		var lats []sim.Duration
		mon := can.NewController("monitor")
		pt.Attach(mon)
		mon.OnReceive(func(at sim.Time, fr *can.Frame, sender *can.Controller) {
			switch {
			case fr.ID == 0x0C0 && sender.Name != "engine":
				attackThrough++
			case fr.ID == 0x155:
				legitThrough++
				if len(fr.Data) >= 8 {
					lats = append(lats, at-sim.Time(binary.BigEndian.Uint64(fr.Data)))
				}
			case fr.ID == 0x405 && sender.Name != "engine":
				if quarRequested && at > quarAt {
					chassisAfterQuar++
				}
			}
		})

		g.SetWorkers(workers)
		if err := g.RunUntil(10 * sim.Second); err != nil {
			panic(err)
		}
		stopPT()
		stopBody()

		quarantined := f.ZoneQuarantined(infoZone.Name)
		t.AddRow(fmt.Sprintf("%d zones", zones), g.Steps(), attackThrough, legitThrough,
			f.BackboneFramesTotal(), f.BackboneDeliveriesTotal(),
			p95(lats).Micros(), yesNo(quarantined), yesNo(quarantined && chassisAfterQuar > 0))
	}
	return t
}
