package fleet

import (
	"testing"

	"autosec/internal/she"
)

func TestRotateKeysClosesCompromise(t *testing.T) {
	f := New(50, 2, SharedKey, master)
	// Attacker extracts the shared key from vehicle 0.
	stolen := f.Vehicles[0].MasterKey()
	if res := f.AssessCompromise(0); res.Compromised != 50 {
		t.Fatalf("precondition: compromise=%d", res.Compromised)
	}

	// Recovery: rotate the whole fleet to a new master (per-device this
	// time — the compromise motivates the policy change too).
	var newMaster [16]byte
	copy(newMaster[:], "rotated-master-1")
	rotated, failed := f.RotateKeys(newMaster)
	if rotated != 50 || len(failed) != 0 {
		t.Fatalf("rotated=%d failed=%v", rotated, failed)
	}

	// The stolen key no longer authorizes key loads anywhere: rebuild the
	// attack with the old key against the rotated fleet.
	compromised := 0
	for _, v := range f.Vehicles {
		if v.MasterKey() == stolen {
			compromised++
		}
	}
	if compromised != 0 {
		t.Fatalf("%d vehicles still on the stolen key", compromised)
	}
	// And a fresh assessment with the new victim key works as expected
	// (shared policy still shares the new key).
	if res := f.AssessCompromise(0); res.Compromised != 50 {
		t.Fatalf("post-rotation self-check: %d", res.Compromised)
	}
}

func TestRotateKeysIsRepeatable(t *testing.T) {
	f := New(10, 1, PerDevice, master)
	var m2, m3 [16]byte
	copy(m2[:], "second-master-xx")
	copy(m3[:], "third-master-xxx")
	if n, failed := f.RotateKeys(m2); n != 10 || len(failed) != 0 {
		t.Fatalf("first rotation: %d %v", n, failed)
	}
	if n, failed := f.RotateKeys(m3); n != 10 || len(failed) != 0 {
		t.Fatalf("second rotation: %d %v", n, failed)
	}
	// Keys distinct per device after rotation.
	seen := make(map[[16]byte]bool)
	for _, v := range f.Vehicles {
		if seen[v.MasterKey()] {
			t.Fatal("duplicate key after rotation")
		}
		seen[v.MasterKey()] = true
	}
}

func TestRotateKeysFailsForHijackedVehicle(t *testing.T) {
	f := New(5, 1, SharedKey, master)
	// The attacker got there first on vehicle 3: they rotated its master
	// key to one the OEM does not know.
	var evil [16]byte
	copy(evil[:], "attacker-owned!!")
	hijacked := f.Vehicles[3]
	_, _, counter := hijacked.Engine.KeyState(she.MasterECUKey)
	req, err := she.BuildUpdate(hijacked.Engine.UID(), she.MasterECUKey, she.MasterECUKey,
		hijacked.MasterKey(), evil, counter+1, she.Flags{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hijacked.Engine.LoadKey(req); err != nil {
		t.Fatal(err)
	}

	var newMaster [16]byte
	copy(newMaster[:], "oem-recovery-key")
	rotated, failed := f.RotateKeys(newMaster)
	if rotated != 4 {
		t.Fatalf("rotated=%d", rotated)
	}
	if len(failed) != 1 || failed[0] != hijacked.VIN {
		t.Fatalf("failed=%v", failed)
	}
}
