package netif

import (
	"errors"
	"sort"
	"testing"

	"autosec/internal/sim"
)

func TestKindAndSelector(t *testing.T) {
	names := map[Kind]string{CAN: "can", LIN: "lin", FlexRay: "flexray", Ethernet: "ethernet"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	var any Selector
	for k := range names {
		if !any.Matches(k) {
			t.Fatalf("zero selector must match %s", k)
		}
	}
	eth := Only(Ethernet)
	if !eth.Matches(Ethernet) || eth.Matches(CAN) || eth.Matches(LIN) {
		t.Fatal("Only(Ethernet) selector wrong")
	}
	both := Only(CAN) | Only(FlexRay)
	if !both.Matches(CAN) || !both.Matches(FlexRay) || both.Matches(Ethernet) {
		t.Fatal("combined selector wrong")
	}
}

// CAN keys must sort exactly like their bare identifiers, because the
// detectors' sorted-key sweeps replaced maps keyed by can.ID and the
// alert order is golden-tested.
func TestKeyOrderingAndRoundTrip(t *testing.T) {
	ids := []uint32{0x7DF, 0x0C0, 0x1FFFFFFF, 0, 0x155}
	keys := make([]Key, len(ids))
	for i, id := range ids {
		keys[i] = MakeKey(CAN, id)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i := range keys {
		if keys[i].ID() != ids[i] || keys[i].Kind() != CAN {
			t.Fatalf("key %d: got (%s, %#x), want (can, %#x)", i, keys[i].Kind(), keys[i].ID(), ids[i])
		}
	}
	k := MakeKey(FlexRay, 62)
	if k.Kind() != FlexRay || k.ID() != 62 {
		t.Fatalf("MakeKey round trip: (%s, %d)", k.Kind(), k.ID())
	}
	f := Frame{Medium: FlexRay, ID: 62}
	if f.Key() != k {
		t.Fatal("Frame.Key disagrees with MakeKey")
	}
}

func TestFrameCloneCopyEqual(t *testing.T) {
	f := Frame{Medium: LIN, ID: 0x21, Priority: 0x21, Sender: "door", Payload: []byte{1, 2, 3}}
	c := f.Clone()
	if !f.Equal(&c) {
		t.Fatal("clone not equal")
	}
	c.Payload[0] = 9
	if f.Payload[0] == 9 {
		t.Fatal("clone shares payload storage")
	}
	var dst Frame
	dst.Payload = make([]byte, 0, 16)
	buf := dst.Payload
	f.CopyInto(&dst)
	if !f.Equal(&dst) {
		t.Fatal("CopyInto not equal")
	}
	if &buf[:1][0] != &dst.Payload[0] {
		t.Fatal("CopyInto did not reuse the destination buffer")
	}
	g := f.Clone()
	g.Aux = 7
	if f.Equal(&g) {
		t.Fatal("Equal ignores Aux")
	}
}

func TestTranslateAcrossMedia(t *testing.T) {
	var out Frame
	var scratch []byte

	// Same kind: pure view copy.
	src := Frame{Medium: CAN, ID: 0x100, Priority: 0x100, Payload: []byte{1, 2}}
	if err := Translate(&out, &src, CAN, &scratch); err != nil {
		t.Fatal(err)
	}
	if &out.Payload[0] != &src.Payload[0] {
		t.Fatal("same-kind translate must alias the payload")
	}

	// X -> Ethernet tunnels; Ethernet tunnel -> X restores.
	if err := Translate(&out, &src, Ethernet, &scratch); err != nil {
		t.Fatal(err)
	}
	if out.Medium != Ethernet || out.ID != TunnelEtherType || !IsTunnel(&out) {
		t.Fatalf("CAN->Ethernet should tunnel, got %+v", out)
	}
	var back Frame
	if err := Translate(&back, &out, CAN, &scratch); err != nil {
		t.Fatal(err)
	}
	if back.Medium != CAN || back.ID != src.ID || string(back.Payload) != string(src.Payload) {
		t.Fatalf("tunnel round trip lost state: %+v", back)
	}
	// A CAN tunnel does not decapsulate onto LIN.
	if err := Translate(&back, &out, LIN, &scratch); !errors.Is(err, ErrUntranslatable) {
		t.Fatalf("CAN tunnel onto LIN: err=%v", err)
	}

	// Direct cross-medium: capacity and identifier-width checks.
	big := Frame{Medium: Ethernet, ID: 0x88B6, Payload: make([]byte, 100)}
	if err := Translate(&out, &big, CAN, &scratch); !errors.Is(err, ErrUntranslatable) {
		t.Fatalf("100-byte payload onto classic CAN: err=%v", err)
	}
	odd := Frame{Medium: CAN, ID: 0x1A0, Payload: []byte{1, 2, 3}}
	if err := Translate(&out, &odd, FlexRay, &scratch); err != nil {
		t.Fatal(err)
	}
	if len(out.Payload) != 4 || out.Payload[3] != 0 {
		t.Fatalf("odd payload onto FlexRay must zero-pad to even: % X", out.Payload)
	}
	wide := Frame{Medium: CAN, ID: 0x1FFFF, Flags: FlagExtended, Payload: []byte{1}}
	if err := Translate(&out, &wide, LIN, &scratch); err != nil {
		t.Fatal(err)
	}
	if out.ID != 0x1FFFF&0x3F {
		t.Fatalf("LIN translation must mask to 6-bit IDs, got %#x", out.ID)
	}
}

func TestTraceKeysAndIntervals(t *testing.T) {
	var tr Trace
	add := func(at sim.Time, m Kind, id uint32) {
		tr.Records = append(tr.Records, Record{At: at, Frame: Frame{Medium: m, ID: id}})
	}
	add(10, CAN, 0x100)
	add(20, LIN, 0x21)
	add(30, CAN, 0x100)
	add(60, CAN, 0x100)
	keys := tr.Keys()
	if len(keys) != 2 || keys[0] != MakeKey(CAN, 0x100) || keys[1] != MakeKey(LIN, 0x21) {
		t.Fatalf("keys = %v", keys)
	}
	if got := len(tr.ByKey(MakeKey(CAN, 0x100))); got != 3 {
		t.Fatalf("ByKey found %d records", got)
	}
	iv := tr.Intervals(MakeKey(CAN, 0x100))
	if len(iv) != 2 || iv[0] != 20 || iv[1] != 30 {
		t.Fatalf("intervals = %v", iv)
	}
}
