// backend.go is the OEM side of a campaign: the director and image
// repositories, the per-model bundle generations they have published,
// and the trust-epoch rotation used to recover from key compromise.
// Bundles are published once per (generation, model) and then shared by
// every vehicle of the model — the structure that makes the fleet's
// verify-once-per-campaign memoization effective — and are immutable
// after publication (the ota.VerifyCache caches attestations per bundle
// identity on exactly that contract).
package campaign

import (
	"crypto/ed25519"
	"fmt"

	"autosec/internal/ota"
	"autosec/internal/sim"
)

// Generation indices into Backend.gens: the firmware history every
// campaign starts from. Factory firmware ships on every vehicle,
// baseline is the previous campaign (late joiners miss it — that is the
// version skew), current is the campaign being rolled out.
const (
	GenFactory = iota
	GenBaseline
	GenCurrent
)

// Firmware versions carried by the generations.
const (
	versionFactory  = 1
	versionBaseline = 2
	versionCurrent  = 3
	// versionEvil is the counter the attacker forges: far above anything
	// legitimate so the forged bundle clears every version check.
	versionEvil = 900
)

// Backend is the campaign's server side: two repository signers and the
// published per-model bundle generations.
type Backend struct {
	director *ota.Repository
	image    *ota.Repository
	models   int
	// gens[g][m] is generation g's bundle for model m. Published bundles
	// are immutable.
	gens [][]*ota.Bundle
	// Epoch counts trust-epoch rotations (0 = factory trust).
	Epoch int
}

// NewBackend creates the repositories and publishes the factory and
// baseline generations with the given stale-metadata expiry, then the
// current campaign with the campaign expiry.
func NewBackend(models int, staleExpiry, campaignExpiry sim.Time) (*Backend, error) {
	if models < 1 {
		models = 1
	}
	b := &Backend{models: models}
	if err := b.newRepos(); err != nil {
		return nil, err
	}
	b.publish(versionFactory, staleExpiry)
	b.publish(versionBaseline, staleExpiry)
	b.publish(versionCurrent, campaignExpiry)
	return b, nil
}

func (b *Backend) newRepos() error {
	d, err := ota.NewRepository("director")
	if err != nil {
		return err
	}
	im, err := ota.NewRepository("image")
	if err != nil {
		return err
	}
	b.director, b.image = d, im
	return nil
}

// Group names the campaign addressing group of a model line; director
// metadata is signed once per group, not once per vehicle.
func Group(model int) string { return fmt.Sprintf("model-%d", model) }

// hwid names the updatable ECU hardware of a model line.
func hwid(model int) string { return fmt.Sprintf("ecu-m%d-app", model) }

// payload renders the deterministic firmware image bytes for one
// (model, version) pair.
func payload(model int, version uint64) []byte {
	return []byte(fmt.Sprintf("model-%d app firmware v%d :: 0123456789abcdef0123456789abcdef", model, version))
}

// target builds the (model, version) update target.
func target(model int, version uint64) ota.Target {
	return ota.MakeTarget(fmt.Sprintf("model-%d/app-fw", model), version, hwid(model), payload(model, version))
}

// publish signs one bundle per model at the given firmware version and
// appends the generation.
func (b *Backend) publish(version uint64, expires sim.Time) {
	gen := make([]*ota.Bundle, b.models)
	for m := 0; m < b.models; m++ {
		t := target(m, version)
		gen[m] = &ota.Bundle{
			Director: b.director.Sign(Group(m), []ota.Target{t}, expires),
			Image:    b.image.Sign("", []ota.Target{t}, expires),
			Payloads: map[string][]byte{t.Name: payload(m, version)},
		}
	}
	b.gens = append(b.gens, gen)
}

// Bundle returns generation gen's bundle for model m.
func (b *Backend) Bundle(gen, m int) *ota.Bundle { return b.gens[gen][m] }

// Current returns the newest published bundle for model m — what an
// honest update channel serves.
func (b *Backend) Current(m int) *ota.Bundle { return b.gens[len(b.gens)-1][m] }

// Keys returns the verification keys of the current trust epoch.
func (b *Backend) Keys() (director, image ed25519.PublicKey) {
	return b.director.PublicKey(), b.image.PublicKey()
}

// StealKeys returns both repositories' signing keys — the attacker-side
// primitive for the two-key compromise scenario.
func (b *Backend) StealKeys() (director, image ed25519.PrivateKey) {
	return b.director.StealKey(), b.image.StealKey()
}

// StealImageKey returns only the image repository's signing key.
func (b *Backend) StealImageKey() ed25519.PrivateKey { return b.image.StealKey() }

// RotateTrust moves the backend to a new trust epoch: fresh repository
// keys (version counters restart at 1, the Uptane root-rotation
// analogue) and a republished current campaign under the new keys. The
// previously published generations stay in gens — an attacker still
// holds those bytes — but nothing new is ever signed under the old keys.
func (b *Backend) RotateTrust(campaignExpiry sim.Time) error {
	if err := b.newRepos(); err != nil {
		return err
	}
	b.Epoch++
	b.publish(versionCurrent, campaignExpiry)
	return nil
}
