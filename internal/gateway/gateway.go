// Package gateway implements the paper's Secure Gateway layer: a central
// domain gateway that routes frames between in-vehicle network domains
// (infotainment, powertrain, chassis, telematics, ...), applies an ordered
// rule set with allow/deny/rate-limit actions, and can quarantine a
// compromised domain so an attack does not propagate to the others.
package gateway

import (
	"errors"
	"fmt"

	"autosec/internal/can"
	"autosec/internal/obs"
	"autosec/internal/sim"
)

// Action is a routing rule's verdict.
type Action int

const (
	// Deny drops the frame.
	Deny Action = iota
	// Allow forwards the frame to the rule's destination domains.
	Allow
)

func (a Action) String() string {
	if a == Allow {
		return "allow"
	}
	return "deny"
}

// Rule is one entry of the gateway's ordered rule set. The first matching
// rule decides; with no match the gateway's default policy applies.
type Rule struct {
	// Name labels the rule in logs and stats.
	Name string
	// From is the source domain, or "*" for any.
	From string
	// IDLo..IDHi is the matched identifier range (inclusive).
	IDLo, IDHi can.ID
	// To lists destination domains for Allow rules; empty means "all other
	// domains".
	To []string
	// Action is the verdict.
	Action Action
	// RatePerSec, when positive, bounds matched forwarding; excess frames
	// are dropped even if the rule allows them.
	RatePerSec float64
	// BurstFrames is the token-bucket depth (default: RatePerSec).
	BurstFrames float64

	tokens float64
	last   sim.Time
	inited bool

	Matched   sim.Counter
	RateDrops sim.Counter
}

// matches reports whether the rule applies to the frame from the domain.
func (r *Rule) matches(from string, f *can.Frame) bool {
	if r.From != "*" && r.From != from {
		return false
	}
	return f.ID >= r.IDLo && f.ID <= r.IDHi
}

// admit applies the rule's rate limit at virtual time now.
func (r *Rule) admit(now sim.Time) bool {
	if r.RatePerSec <= 0 {
		return true
	}
	burst := r.BurstFrames
	if burst <= 0 {
		burst = r.RatePerSec
	}
	if !r.inited {
		r.inited = true
		r.tokens = burst
		r.last = now
	}
	r.tokens += (now - r.last).Seconds() * r.RatePerSec
	if r.tokens > burst {
		r.tokens = burst
	}
	r.last = now
	if r.tokens < 1 {
		return false
	}
	r.tokens--
	return true
}

// domain is one attached IVN.
type domain struct {
	name        string
	ctrl        *can.Controller
	quarantined bool
}

// Gateway joins CAN domains with an ordered, updatable rule set. Rule-set
// updates at runtime are the extensibility hook: scenario E8 sweeps rule
// granularity, and the policy engine installs new rules in-field.
type Gateway struct {
	Name   string
	kernel *sim.Kernel

	domains map[string]*domain
	// order lists domain names in attach order: forward fans out over this
	// slice, not the map, so routing order (and everything downstream of
	// it — kernel dispatch order, bus arbitration, traces) is
	// deterministic.
	order []string
	rules []*Rule
	// DefaultAction applies when no rule matches (Deny is the secure
	// default; a permissive gateway is the "no gateway" baseline).
	DefaultAction Action
	// Latency is the gateway's store-and-forward processing delay per
	// frame (rule evaluation, routing). 0 means instantaneous.
	Latency sim.Duration

	Forwarded   sim.Counter
	Blocked     sim.Counter
	RateLimited sim.Counter
	QuarDrops   sim.Counter

	observers []func(at sim.Time, from string, f *can.Frame, verdict string)

	// Observability (nil when off). Verdict and domain labels intern on
	// first sight and hit the tracer's label map afterwards, so the
	// per-frame emit is allocation-free once the verdict set is warm.
	obsTr  *obs.Tracer
	obsSub obs.Label // "gateway"
}

// New creates a gateway with a deny-by-default policy.
func New(k *sim.Kernel, name string) *Gateway {
	return &Gateway{Name: name, kernel: k, domains: make(map[string]*domain)}
}

// Errors.
var (
	ErrDupDomain     = errors.New("gateway: domain already attached")
	ErrUnknownDomain = errors.New("gateway: unknown domain")
)

// AttachDomain connects the gateway to a bus as the given domain name.
// The gateway joins the bus with its own CAN controller.
func (g *Gateway) AttachDomain(name string, bus *can.Bus) error {
	if _, dup := g.domains[name]; dup {
		return fmt.Errorf("%w: %s", ErrDupDomain, name)
	}
	ctrl := can.NewController("gw-" + g.Name + "-" + name)
	bus.Attach(ctrl)
	d := &domain{name: name, ctrl: ctrl}
	g.domains[name] = d
	g.order = append(g.order, name)
	ctrl.OnReceive(func(at sim.Time, f *can.Frame, sender *can.Controller) {
		g.route(at, d, f)
	})
	return nil
}

// AddRule appends a rule to the ordered rule set.
func (g *Gateway) AddRule(r *Rule) { g.rules = append(g.rules, r) }

// SetRules replaces the entire rule set — the in-field update primitive.
func (g *Gateway) SetRules(rs []*Rule) { g.rules = rs }

// Rules returns the active rule set (callers must not mutate entries
// concurrently with simulation).
func (g *Gateway) Rules() []*Rule { return g.rules }

// Quarantine isolates a domain: nothing routes in or out of it until
// Release. This is the containment action the paper assigns to the
// gateway when one IVN is compromised.
func (g *Gateway) Quarantine(name string) error {
	d, ok := g.domains[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDomain, name)
	}
	d.quarantined = true
	return nil
}

// Release lifts a quarantine.
func (g *Gateway) Release(name string) error {
	d, ok := g.domains[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownDomain, name)
	}
	d.quarantined = false
	return nil
}

// Quarantined reports a domain's isolation state.
func (g *Gateway) Quarantined(name string) bool {
	d, ok := g.domains[name]
	return ok && d.quarantined
}

// Observe registers a verdict observer (feeds the IDS and audit logs).
func (g *Gateway) Observe(fn func(at sim.Time, from string, f *can.Frame, verdict string)) {
	g.observers = append(g.observers, fn)
}

func (g *Gateway) notify(at sim.Time, from string, f *can.Frame, verdict string) {
	if g.obsTr != nil {
		g.obsTr.Instant(at, g.obsSub, g.obsTr.Label(verdict), g.obsTr.Label(from), int64(f.ID), 0)
	}
	for _, fn := range g.observers {
		fn(at, from, f, verdict)
	}
}

// Instrument attaches the gateway to the observability layer (either
// argument may be nil).
//
// Trace events (subsystem "gateway"): one instant per verdict, named with
// the verdict string ("allow:<rule>", "deny:<rule>", "rate:<rule>",
// "allow:default", "deny:default", "quarantined"), with Str = source
// domain and Arg1 = frame ID.
//
// Metrics: gateway/forwarded, gateway/blocked, gateway/rate_limited and
// gateway/quarantine_drops probe the existing counters.
func (g *Gateway) Instrument(tr *obs.Tracer, reg *obs.Registry) {
	if tr != nil {
		g.obsTr = tr
		g.obsSub = tr.Label("gateway")
	}
	if reg != nil {
		reg.Probe("gateway/forwarded", func() float64 { return float64(g.Forwarded.Value) })
		reg.Probe("gateway/blocked", func() float64 { return float64(g.Blocked.Value) })
		reg.Probe("gateway/rate_limited", func() float64 { return float64(g.RateLimited.Value) })
		reg.Probe("gateway/quarantine_drops", func() float64 { return float64(g.QuarDrops.Value) })
	}
}

// route applies the rule set to a frame received from a domain.
func (g *Gateway) route(at sim.Time, from *domain, f *can.Frame) {
	if from.quarantined {
		g.QuarDrops.Inc()
		g.notify(at, from.name, f, "quarantined")
		return
	}
	for _, r := range g.rules {
		if !r.matches(from.name, f) {
			continue
		}
		r.Matched.Inc()
		if r.Action == Deny {
			g.Blocked.Inc()
			g.notify(at, from.name, f, "deny:"+r.Name)
			return
		}
		if !r.admit(at) {
			r.RateDrops.Inc()
			g.RateLimited.Inc()
			g.notify(at, from.name, f, "rate:"+r.Name)
			return
		}
		g.forward(at, from, f, r.To)
		g.notify(at, from.name, f, "allow:"+r.Name)
		return
	}
	if g.DefaultAction == Allow {
		g.forward(at, from, f, nil)
		g.notify(at, from.name, f, "allow:default")
		return
	}
	g.Blocked.Inc()
	g.notify(at, from.name, f, "deny:default")
}

// forward relays the frame to the destination domains (all others when
// dsts is empty), excluding the source and quarantined domains.
func (g *Gateway) forward(at sim.Time, from *domain, f *can.Frame, dsts []string) {
	g.Forwarded.Inc()
	send := func(d *domain) {
		if d == from || d.quarantined {
			return
		}
		frame := f.Clone()
		deliver := func() {
			// Best effort: bus-off or queue-full drops are the destination
			// controller's problem and show up in its counters.
			_ = d.ctrl.Send(frame, nil)
		}
		if g.Latency > 0 {
			g.kernel.After(g.Latency, deliver)
		} else {
			deliver()
		}
	}
	if len(dsts) == 0 {
		for _, name := range g.order {
			send(g.domains[name])
		}
		return
	}
	for _, name := range dsts {
		if d, ok := g.domains[name]; ok {
			send(d)
		}
	}
}
