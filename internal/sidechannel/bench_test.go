package sidechannel

import (
	"testing"

	"autosec/internal/sim"
)

func BenchmarkAcquire1kTraces(b *testing.B) {
	rng := sim.NewStream(1, "bench")
	for i := 0; i < b.N; i++ {
		_ = Acquire(testKey, 1000, Config{NoiseSigma: 1}, rng)
	}
}

func BenchmarkCPAByte(b *testing.B) {
	rng := sim.NewStream(1, "bench")
	ts := Acquire(testKey, 1000, Config{NoiseSigma: 1}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _ := CPAByte(ts, i%16)
		_ = g
	}
}

func BenchmarkFullKeyCPA(b *testing.B) {
	rng := sim.NewStream(1, "bench")
	ts := Acquire(testKey, 500, Config{NoiseSigma: 0.5}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := CPA(ts); got != testKey {
			b.Fatal("key not recovered")
		}
	}
}
