package sim

import (
	"fmt"
	"testing"
)

// BenchmarkKernelDispatch measures raw event throughput: schedule-and-run
// cycles through the binary heap.
func BenchmarkKernelDispatch(b *testing.B) {
	k := NewKernel(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(Microsecond, tick)
		}
	}
	k.After(0, tick)
	b.ResetTimer()
	_ = k.Run()
}

// BenchmarkKernelFanOut measures dispatch with a populated heap: 1000
// events pending at all times.
func BenchmarkKernelFanOut(b *testing.B) {
	k := NewKernel(1)
	for i := 0; i < 1000; i++ {
		i := i
		var reschedule func()
		reschedule = func() { k.After(Duration(1000+i), reschedule) }
		k.After(Duration(i), reschedule)
	}
	b.ResetTimer()
	target := k.Now()
	for i := 0; i < b.N; i++ {
		target += Microsecond
		_ = k.RunUntil(target)
	}
}

// BenchmarkKernelSchedule measures one steady-state schedule→dispatch
// cycle with a pre-allocated callback, against an empty queue and against
// a deep backlog of far-future events (heap depth exercises sift cost).
// Allocations are reported: in steady state the kernel itself must not
// allocate per event.
func BenchmarkKernelSchedule(b *testing.B) {
	for _, depth := range []int{0, 1024} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			k := NewKernel(1)
			fn := func() {}
			for i := 0; i < depth; i++ {
				k.At(Time(1<<55)+Time(i), fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.After(Microsecond, fn)
				_ = k.RunUntil(k.Now() + Microsecond)
			}
		})
	}
}

func BenchmarkStreamUint64(b *testing.B) {
	s := NewStream(1, "bench")
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkStreamNorm(b *testing.B) {
	s := NewStream(1, "bench")
	for i := 0; i < b.N; i++ {
		_ = s.Norm()
	}
}
