package core

import (
	"autosec/internal/obs"
)

// Instrument wires the whole vehicle into the observability layer in one
// call: kernel dispatch tracing, per-domain bus spans and metrics,
// gateway verdicts, IDS alerts, audit-log health, OTA outcomes (when a
// client is attached) and the PKES unit. Either argument may be nil —
// tracing and metrics enable independently — and a vehicle that is never
// instrumented pays only nil checks on its hot paths.
//
// Buses instrument in fixed domain order so label interning (and
// therefore trace bytes) is deterministic.
func (v *Vehicle) Instrument(tr *obs.Tracer, reg *obs.Registry) {
	if v.Group != nil && tr != nil {
		// One trace ring cannot take concurrent appends from per-zone
		// kernels; parallel builds take per-member tracers instead.
		panic("core: shared tracer on a per-zone-kernel build; use InstrumentParallel")
	}
	if tr == nil && v.reattachMetrics(reg) {
		return
	}
	if tr != nil {
		v.Kernel.SetTraceSink(tr)
	}
	if reg != nil {
		if v.Group != nil {
			reg.Probe("kernel/steps", func() float64 { return float64(v.Group.Steps()) })
			reg.Probe("kernel/pending", func() float64 { return float64(v.Group.Pending()) })
		} else {
			reg.Probe("kernel/steps", func() float64 { return float64(v.Kernel.Steps()) })
			reg.Probe("kernel/pending", func() float64 { return float64(v.Kernel.Pending()) })
		}
	}
	for _, name := range []string{DomainPowertrain, DomainChassis, DomainInfotainment} {
		v.Buses[name].Instrument(tr, reg)
	}
	if v.Zonal != nil {
		v.Zonal.Instrument(tr, reg)
	} else {
		v.Gateway.Instrument(tr, reg)
	}
	v.IDS.Instrument(tr, reg)
	v.Audit.Instrument(reg)
	if v.OTA != nil {
		v.OTA.Instrument(tr, reg)
	}
	v.Keyless.Instrument(tr, reg, v.Kernel.Now)
	if reg != nil {
		reg.Probe("core/auth_failures", func() float64 { return float64(v.AuthFailures.Value) })
	}
}

// reattachMetrics is the metrics-only re-instrument fast path for pooled
// vehicles: when this vehicle was already Instrument-ed into reg and has
// since been Reset, the registry still holds every probe closure (probes
// bind to subsystem objects, which the pool reuses — see
// obs.Registry.Rewind) and the only state to restore is the hot-path
// instrument pointers Reset detached. The full path costs ~60 heap
// allocations per vehicle in key interning and closure re-registration;
// this path costs three pointer writes per cached subsystem. Any cache
// miss (different registry, never instrumented) falls back to the full
// path, so correctness never depends on the cache being warm.
func (v *Vehicle) reattachMetrics(reg *obs.Registry) bool {
	if reg == nil || v.OTA != nil {
		// An attached OTA client is scenario state the cache has never
		// seen; take the full path so its instruments register.
		return false
	}
	for _, name := range []string{DomainPowertrain, DomainChassis, DomainInfotainment} {
		if !v.Buses[name].ReattachMetrics(reg) {
			return false
		}
	}
	if !v.IDS.ReattachMetrics(reg) {
		return false
	}
	return v.Audit.ReattachMetrics(reg)
}

// InstrumentParallel is Instrument for per-zone-kernel builds: member i's
// kernel — and every subsystem homed in zone i (its buses and gateway) —
// attaches to tracers[i], so each trace ring is appended by exactly one
// kernel. Subsystems homed in zone 0 (IDS, keyless, OTA) use tracers[0].
// tracers may be nil or shorter than the member count; missing entries
// mean metrics-only for that member. Metrics register against the shared
// registry exactly like Instrument; read them between runs only.
func (v *Vehicle) InstrumentParallel(tracers []*obs.Tracer, reg *obs.Registry) {
	if v.Group == nil {
		panic("core: InstrumentParallel on a single-kernel build; use Instrument")
	}
	trOf := func(i int) *obs.Tracer {
		if i < len(tracers) {
			return tracers[i]
		}
		return nil
	}
	for i := 0; i < v.Group.Members(); i++ {
		if t := trOf(i); t != nil {
			v.Group.Kernel(i).SetTraceSink(t)
		}
	}
	if reg != nil {
		reg.Probe("kernel/steps", func() float64 { return float64(v.Group.Steps()) })
		reg.Probe("kernel/pending", func() float64 { return float64(v.Group.Pending()) })
	}
	for _, name := range []string{DomainPowertrain, DomainChassis, DomainInfotainment} {
		m := 0
		if z, ok := v.Zonal.ZoneOf(name); ok {
			m = z.Member()
		}
		v.Buses[name].Instrument(trOf(m), reg)
	}
	v.Zonal.InstrumentZones(tracers, reg)
	v.IDS.Instrument(trOf(0), reg)
	v.Audit.Instrument(reg)
	if v.OTA != nil {
		v.OTA.Instrument(trOf(0), reg)
	}
	v.Keyless.Instrument(trOf(0), reg, v.Kernel.Now)
	if reg != nil {
		reg.Probe("core/auth_failures", func() float64 { return float64(v.AuthFailures.Value) })
	}
}
