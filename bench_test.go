package autosec_test

import (
	"context"
	"runtime"
	"testing"

	"autosec/internal/experiments"
	"autosec/internal/runner"
)

// One benchmark per experiment table: `go test -bench .` regenerates the
// full evaluation of DESIGN.md/EXPERIMENTS.md. Each iteration rebuilds
// the experiment from scratch, so ns/op is the cost of reproducing that
// table. The table itself is printed once per benchmark via b.Log (shown
// with -v).

func benchTable(b *testing.B, run func(seed uint64) *experiments.Table) {
	b.Helper()
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		last = run(1)
	}
	if last != nil {
		b.Log("\n" + last.String())
	}
}

func BenchmarkE1BusDoS(b *testing.B)         { benchTable(b, experiments.E1BusDoS) }
func BenchmarkE2CPA(b *testing.B)            { benchTable(b, experiments.E2SideChannel) }
func BenchmarkE3Fleet(b *testing.B)          { benchTable(b, experiments.E3FleetCompromise) }
func BenchmarkE4Pseudonym(b *testing.B)      { benchTable(b, experiments.E4Pseudonym) }
func BenchmarkE5Tradeoff(b *testing.B)       { benchTable(b, experiments.E5Tradeoff) }
func BenchmarkE6Verif(b *testing.B)          { benchTable(b, experiments.E6Verification) }
func BenchmarkE7AuthCAN(b *testing.B)        { benchTable(b, experiments.E7AuthenticatedCAN) }
func BenchmarkE8Gateway(b *testing.B)        { benchTable(b, experiments.E8Gateway) }
func BenchmarkE9Relay(b *testing.B)          { benchTable(b, experiments.E9Relay) }
func BenchmarkE10OTA(b *testing.B)           { benchTable(b, experiments.E10OTA) }
func BenchmarkE11IDS(b *testing.B)           { benchTable(b, experiments.E11IDS) }
func BenchmarkE12Lifetime(b *testing.B)      { benchTable(b, experiments.E12Lifetime) }
func BenchmarkE13Diagnostics(b *testing.B)   { benchTable(b, experiments.E13DiagnosticAccess) }
func BenchmarkE14BusOff(b *testing.B)        { benchTable(b, experiments.E14BusOff) }
func BenchmarkE15VerifyScaling(b *testing.B) { benchTable(b, experiments.E15VerifyScaling) }
func BenchmarkE16CrossMedium(b *testing.B)   { benchTable(b, experiments.E16CrossMediumGateway) }
func BenchmarkE17Zonal(b *testing.B)         { benchTable(b, experiments.E17Zonal) }
func BenchmarkE18Fleet(b *testing.B)         { benchTable(b, experiments.E18Fleet) }
func BenchmarkE19KernelPar(b *testing.B)     { benchTable(b, experiments.E19KernelPar) }
func BenchmarkE20Observability(b *testing.B) { benchTable(b, experiments.E20Observability) }
func BenchmarkE21MediumIDS(b *testing.B)     { benchTable(b, experiments.E21MediumIDS) }
func BenchmarkE22Campaign(b *testing.B)      { benchTable(b, experiments.E22Campaign) }
func BenchmarkA1MACTruncation(b *testing.B)  { benchTable(b, experiments.A1MACTruncation) }
func BenchmarkA2BoundingSweep(b *testing.B)  { benchTable(b, experiments.A2BoundingThreshold) }

// Multi-seed replication, serial vs parallel. The pair measures (not
// assumes) the speedup of sharding replicates across the worker pool:
// compare ns/op between Serial and Parallel with
//
//	go test -bench 'Replication8Seeds' -benchtime 3x
//
// The suite is the two simulation-heavy bus experiments so one iteration
// stays around a second; the aggregation itself is microseconds.

func replicationSuite(seed uint64) []*experiments.Table {
	return []*experiments.Table{
		experiments.E1BusDoS(seed),
		experiments.E14BusOff(seed),
	}
}

func benchReplication(b *testing.B, workers int) {
	b.Helper()
	seeds := runner.Seeds(1, 8)
	var last []*experiments.Table
	for i := 0; i < b.N; i++ {
		tables, err := runner.ReplicateAggregate(context.Background(), replicationSuite, seeds, workers)
		if err != nil {
			b.Fatal(err)
		}
		last = tables
	}
	if len(last) > 0 {
		b.Log("\n" + last[0].String())
	}
}

func BenchmarkReplication8SeedsSerial(b *testing.B) { benchReplication(b, 1) }
func BenchmarkReplication8SeedsParallel(b *testing.B) {
	benchReplication(b, runtime.GOMAXPROCS(0))
}

// Intra-vehicle parallelism: one 8-zone E19 scenario at increasing worker
// counts. Unlike the replication pair above — which shards independent
// seeds — this speeds up a single simulated vehicle, so compare ns/op
// between Workers1 and WorkersMax with
//
//	go test -bench 'E19KernelParWorkers' -benchtime 3x
//
// On a single-core host the sweep measures synchronization overhead
// instead of speedup; both are honest numbers for BENCH_PR7.json.

func benchE19Workers(b *testing.B, workers int) {
	b.Helper()
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		last = experiments.E19KernelParWith(1, []int{8}, workers)
	}
	if last != nil {
		b.Log("\n" + last.String())
	}
}

func BenchmarkE19KernelParWorkers1(b *testing.B) { benchE19Workers(b, 1) }
func BenchmarkE19KernelParWorkers2(b *testing.B) { benchE19Workers(b, 2) }
func BenchmarkE19KernelParWorkersMax(b *testing.B) {
	benchE19Workers(b, runtime.GOMAXPROCS(0))
}
