package experiments

import (
	"fmt"

	"autosec/internal/can"
	"autosec/internal/ecu"
	"autosec/internal/gateway"
	"autosec/internal/ids"
	"autosec/internal/sim"
	"autosec/internal/tradeoff"
	"autosec/internal/verif"
	"autosec/internal/workload"
)

// E5Tradeoff quantifies §5's dynamic security/smartness/communication
// trade-off: a static operating point either overloads the CPU, starves
// perception, or drives exposed; the adaptive controller avoids all three.
func E5Tradeoff(seed uint64) *Table {
	_ = seed // the evaluation is deterministic
	t := &Table{
		ID:      "E5",
		Title:   "Static vs adaptive operating modes over a commute cycle (§5)",
		Claim:   "an autonomous car must make real-time decisions on trade-offs between security, energy, and smartness",
		Columns: []string{"controller", "CPU overload frac", "analytics shortfall (Hz)", "exposed frac", "mean cloud (kbps)", "mode switches"},
	}
	cycle := workload.CommuteCycle()
	dur := 24 * sim.Minute
	const budget = 0.6
	cases := []struct {
		name string
		ctrl tradeoff.Controller
	}{
		{"static-city-sized", tradeoff.Static{M: tradeoff.Mode{Name: "city", AnalyticsHz: 50, MACBits: 64, CloudKbps: 64}}},
		{"static-highway-sized", tradeoff.Static{M: tradeoff.Mode{Name: "hwy", AnalyticsHz: 10, MACBits: 0, CloudKbps: 256}}},
		{"adaptive", tradeoff.Adaptive{}},
	}
	for _, c := range cases {
		r := tradeoff.Evaluate(c.name, cycle, dur, sim.Second, c.ctrl, budget, 1)
		t.AddRow(r.Controller, r.OverloadFrac, r.CoverageShortfall, r.ExposedFrac, r.MeanCloudKbps, r.ModeSwitches)
	}
	return t
}

// E6Verification quantifies §§5-6's verification trade-off: exhaustive
// configuration verification explodes with extensibility headroom, the
// pairwise covering array stays tractable, and reserved-for-future
// features carry a measurable verification overhead today.
func E6Verification(seed uint64) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Verification cost vs configuration-space growth (§§5-6)",
		Claim:   "extensibility ships more configurations than current use needs, and verification must still cover them",
		Columns: []string{"features", "exhaustive configs", "pairwise rows", "lower bound", "reserved overhead"},
	}
	features := []verif.Feature{
		{Name: "mac-bits", Options: 4},
		{Name: "gateway-ruleset", Options: 3},
		{Name: "ids-detectors", Options: 4},
		{Name: "crypto-suite", Options: 3},
		{Name: "v2x-rotation", Options: 4},
		{Name: "boot-mode", Options: 2},
		{Name: "future-pqc-suite", Options: 3, Reserved: true},
		{Name: "future-radio", Options: 3, Reserved: true},
		{Name: "future-sensor-stack", Options: 4, Reserved: true},
	}
	curve := verif.GrowthCurve(features, seed)
	for i, r := range curve {
		overhead := "n/a"
		if r.ReservedOverhead != 0 {
			overhead = pct(r.ReservedOverhead)
		}
		t.AddRow(i+1, r.TotalConfigs, r.PairwiseRows, r.LowerBound, overhead)
	}
	return t
}

func pct(f float64) string {
	return fmt.Sprintf("%.1f%%", 100*f)
}

// E7AuthenticatedCAN quantifies §6's optimization-vs-security conflict:
// per-frame CMAC on a software MCU blows control deadlines as frame rates
// rise; the SHE accelerator holds the schedule.
func E7AuthenticatedCAN(seed uint64) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Authenticated CAN: software crypto vs SHE accelerator (§6)",
		Claim:   "optimization needs, particularly real-time requirements, make the security trade-off acute",
		Columns: []string{"frame rate (fps)", "crypto", "CPU util", "control misses", "crypto misses", "crypto p99 (ms)"},
	}
	for _, fps := range []int{200, 500, 1000, 2000} {
		for _, accel := range []bool{false, true} {
			k := sim.NewKernel(seed)
			cpu := ecu.NewCPU(k, "mcu")
			// Control workload: ~45% utilization at mixed periods.
			// Crypto runs at priority 2: above diagnostics (whose 10ms jobs
			// would otherwise block authentication past its deadline) but
			// below the control loops.
			tasks := []*ecu.Task{
				{Name: "torque-loop", Period: 5 * sim.Millisecond, WCET: 1 * sim.Millisecond, Priority: 0},
				{Name: "stability", Period: 10 * sim.Millisecond, WCET: 1500 * sim.Microsecond, Priority: 1},
				{Name: "diagnostics", Period: 100 * sim.Millisecond, WCET: 10 * sim.Millisecond, Priority: 3},
			}
			var stops []func()
			for _, task := range tasks {
				s, err := cpu.AddTask(task)
				if err != nil {
					panic(err)
				}
				stops = append(stops, s)
			}
			// Per-frame CMAC jobs at the lowest priority, 10ms deadline.
			wcet := 400 * sim.Microsecond // software CMAC on an MCU
			name := "software"
			if accel {
				wcet = 40 * sim.Microsecond // SHE-accelerated
				name = "SHE"
			}
			var cryptoMiss int
			var cryptoLat sim.Summary
			cryptoLat.Reserve(5 * fps) // one sample per frame over the 5s horizon
			period := sim.Second / sim.Duration(fps)
			k.Every(0, period, func() {
				start := k.Now()
				_ = cpu.Submit("cmac", wcet, 10*sim.Millisecond, 2, func(at sim.Time, missed bool) {
					cryptoLat.Observe((at - start).Millis())
					if missed {
						cryptoMiss++
					}
				})
			})
			_ = k.RunUntil(5 * sim.Second)
			for _, s := range stops {
				s()
			}
			controlMisses := int64(0)
			for _, task := range tasks {
				controlMisses += task.Misses.Value
			}
			t.AddRow(fps, name, cpu.Utilization(), controlMisses, cryptoMiss, cryptoLat.Quantile(0.99))
		}
	}
	return t
}

// E8Gateway quantifies §7's Secure Gateway claim: rule granularity and the
// quarantine reflex decide how much of an infotainment compromise reaches
// the powertrain.
func E8Gateway(seed uint64) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Gateway containment of a compromised domain (§7)",
		Claim:   "in case one IVN is compromised, the gateway can isolate it and prevent propagation",
		Columns: []string{"configuration", "attack frames through", "legit frames through", "quarantined"},
	}
	type cfg struct {
		name   string
		setup  func(g *gateway.Gateway, eng *ids.Engine)
		reflex bool
	}
	configs := []cfg{
		{"no gateway (default allow)", func(g *gateway.Gateway, _ *ids.Engine) {
			g.DefaultAction = gateway.Allow
		}, false},
		{"coarse allow-all rule", func(g *gateway.Gateway, _ *ids.Engine) {
			g.AddRule(&gateway.Rule{Name: "coarse", From: "infotainment", IDLo: 0, IDHi: uint32(can.MaxStandardID), Action: gateway.Allow})
		}, false},
		{"fine-grained rules", func(g *gateway.Gateway, _ *ids.Engine) {
			g.AddRule(&gateway.Rule{Name: "nav-only", From: "infotainment", IDLo: 0x150, IDHi: 0x15F, Action: gateway.Allow, RatePerSec: 50})
		}, false},
		{"coarse + IDS quarantine reflex", func(g *gateway.Gateway, eng *ids.Engine) {
			g.AddRule(&gateway.Rule{Name: "coarse", From: "infotainment", IDLo: 0, IDHi: uint32(can.MaxStandardID), Action: gateway.Allow})
			eng.OnAlert(func(ids.Alert) { _ = g.Quarantine("infotainment") })
		}, true},
	}
	for _, c := range configs {
		k := sim.NewKernel(seed)
		info := can.NewBus(k, "infotainment", 500_000)
		pt := can.NewBus(k, "powertrain", 500_000)
		g := gateway.New(k, "central")
		_ = g.AttachDomain("infotainment", can.Netif(info))
		_ = g.AttachDomain("powertrain", can.Netif(pt))

		// Powertrain traffic + IDS.
		_, stopTraffic := workload.StartSenders(k, pt, workload.PowertrainMatrix(), 0.01)
		eng := ids.NewEngine(ids.NewFrequencyDetector(), ids.NewSpecDetector())
		clean := workload.SyntheticTrace(workload.PowertrainMatrix(), 10*sim.Second, seed, 0.01)
		// The legit cross-domain nav message is part of the spec baseline.
		appendPeriodic(clean, 0x155, 100*sim.Millisecond, 4, 10*sim.Second)
		eng.Train(clean.Netif())
		eng.Attach(can.Netif(pt))

		c.setup(g, eng)

		// Observer on the powertrain counts what crossed.
		attackThrough, legitThrough := 0, 0
		mon := can.NewController("monitor")
		pt.Attach(mon)
		mon.OnReceive(func(_ sim.Time, f *can.Frame, sender *can.Controller) {
			switch {
			case f.ID == 0x0C0 && sender.Name != "engine":
				attackThrough++
			case f.ID == 0x155:
				legitThrough++
			}
		})

		// Legit infotainment→powertrain nav message at 10 Hz.
		nav := can.NewController("nav")
		info.Attach(nav)
		stopNav := can.PeriodicSender(k, nav, can.Frame{ID: 0x155, Data: make([]byte, 4)}, 100*sim.Millisecond, 0)
		// The compromised head unit injects engine-torque frames at 1 kHz.
		atk := can.NewController("headunit")
		info.Attach(atk)
		stopAtk := can.PeriodicSender(k, atk, can.Frame{ID: 0x0C0, Data: make([]byte, 8)}, sim.Millisecond, 0)

		_ = k.RunUntil(10 * sim.Second)
		stopTraffic()
		stopNav()
		stopAtk()

		t.AddRow(c.name, attackThrough, legitThrough, g.Quarantined("infotainment"))
	}
	return t
}
