// Command canalyze replays a CAN trace through the intrusion-detection
// engine and reports alerts. It can also synthesize traces (clean or with
// an injected attack) in the same text format, so a full train/analyze
// loop works without any other tooling:
//
//	canalyze gen -dur 20 > clean.trace
//	canalyze gen -dur 30 -attack flood > live.trace
//	canalyze detect -train clean.trace live.trace
//	canalyze export -format chrome live.trace > live.json
//
// Trace format: one frame per line, "<seconds> <sender> <hex-id>
// <hex-payload|-> [flags]"; '#' starts a comment. export converts a
// trace into the observability layer's Chrome trace_event JSON (open in
// chrome://tracing / Perfetto) or plain-text timeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"autosec/internal/can"
	"autosec/internal/ids"
	"autosec/internal/obs"
	"autosec/internal/sim"
	"autosec/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "detect":
		cmdDetect(os.Args[2:])
	case "export":
		cmdExport(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  canalyze gen [-dur SECONDS] [-seed N] [-attack none|flood|fuzz|suspend|unknown]   write a trace to stdout
  canalyze detect -train FILE [-detectors all|frequency,spec,...] FILE              replay FILE through the IDS
  canalyze export [-format chrome|timeline] FILE                                    convert a trace for viewers
`)
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dur := fs.Float64("dur", 20, "trace duration in seconds")
	seed := fs.Uint64("seed", 1, "generator seed")
	attack := fs.String("attack", "none", "attack to inject over the middle third: none|flood|fuzz|suspend|unknown")
	_ = fs.Parse(args)

	d := sim.Duration(*dur * float64(sim.Second))
	tr := workload.SyntheticTrace(workload.PowertrainMatrix(), d, *seed, 0.01)
	lo, hi := d/3, 2*d/3
	rnd := sim.NewStream(*seed, "canalyze.attack")
	switch *attack {
	case "none":
	case "flood":
		for at := lo; at < hi; at += sim.Millisecond {
			tr.Records = append(tr.Records, can.Record{At: at, Sender: "attacker",
				Frame: can.Frame{ID: 0x0C0, Data: make([]byte, 8)}})
		}
	case "fuzz":
		for i, r := range tr.Records {
			if r.Frame.ID == 0x1A0 && r.At >= lo && r.At < hi {
				b := make([]byte, len(r.Frame.Data))
				rnd.Bytes(b)
				tr.Records[i].Frame.Data = b
				tr.Records[i].Sender = "attacker"
			}
		}
	case "suspend":
		kept := tr.Records[:0]
		for _, r := range tr.Records {
			if r.Frame.ID == 0x120 && r.At >= lo && r.At < hi {
				continue
			}
			kept = append(kept, r)
		}
		tr.Records = kept
	case "unknown":
		for at := lo; at < hi; at += 50 * sim.Millisecond {
			tr.Records = append(tr.Records, can.Record{At: at, Sender: "attacker",
				Frame: can.Frame{ID: 0x7DF, Data: []byte{0x02, 0x10, 0x01}}})
		}
	default:
		fmt.Fprintf(os.Stderr, "canalyze: unknown attack %q\n", *attack)
		os.Exit(2)
	}
	sort.SliceStable(tr.Records, func(i, j int) bool { return tr.Records[i].At < tr.Records[j].At })
	if err := can.WriteTrace(os.Stdout, tr); err != nil {
		fatal(err)
	}
}

func cmdDetect(args []string) {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	trainPath := fs.String("train", "", "clean training trace (required)")
	dets := fs.String("detectors", "all", "comma list: frequency,interval,entropy,spec or 'all'")
	_ = fs.Parse(args)
	if *trainPath == "" || fs.NArg() != 1 {
		usage()
	}

	train := loadTrace(*trainPath)
	live := loadTrace(fs.Arg(0))

	var detectors []ids.Detector
	switch *dets {
	case "all":
		detectors = []ids.Detector{
			ids.NewFrequencyDetector(), ids.NewIntervalDetector(),
			ids.NewEntropyDetector(), ids.NewSpecDetector(),
		}
	default:
		for _, name := range splitComma(*dets) {
			switch name {
			case "frequency":
				detectors = append(detectors, ids.NewFrequencyDetector())
			case "interval":
				detectors = append(detectors, ids.NewIntervalDetector())
			case "entropy":
				detectors = append(detectors, ids.NewEntropyDetector())
			case "spec":
				detectors = append(detectors, ids.NewSpecDetector())
			default:
				fmt.Fprintf(os.Stderr, "canalyze: unknown detector %q\n", name)
				os.Exit(2)
			}
		}
	}

	eng := ids.NewEngine(detectors...)
	eng.Train(train.Netif())
	for _, r := range live.Netif().Records {
		for _, a := range eng.Observe(r) {
			fmt.Println(a.String())
		}
	}
	fmt.Printf("-- %s over %d frames (%v of traffic)\n",
		eng.Summary(), live.Len(), lastTime(live))
}

// cmdExport replays a candump-style trace into the observability tracer
// and re-exports it for trace viewers — the same event pipeline the live
// simulator uses, so offline captures and simulated runs render
// identically.
func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	format := fs.String("format", "chrome", "output format: chrome (trace_event JSON) or timeline (plain text)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	tr := loadTrace(fs.Arg(0))
	sink := obs.NewTracer(nextPow2(tr.Len()))
	tr.EmitObs(sink)
	if dropped := sink.Dropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "canalyze: warning: %d events dropped\n", dropped)
	}
	var err error
	switch *format {
	case "chrome":
		err = sink.WriteChromeTrace(os.Stdout)
	case "timeline":
		err = sink.WriteTimeline(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "canalyze: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
}

// nextPow2 sizes the tracer ring to hold the whole trace.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func loadTrace(path string) *can.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := can.ParseTrace(f)
	if err != nil {
		fatal(err)
	}
	return tr
}

func lastTime(tr *can.Trace) sim.Time {
	if tr.Len() == 0 {
		return 0
	}
	return tr.Records[tr.Len()-1].At
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "canalyze: %v\n", err)
	os.Exit(1)
}
