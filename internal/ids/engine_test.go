package ids

import (
	"strings"
	"testing"

	"autosec/internal/can"
	"autosec/internal/netif"
	"autosec/internal/sim"
)

func TestEngineAddRemove(t *testing.T) {
	e := NewEngine(NewFrequencyDetector())
	e.Add(NewSpecDetector())
	got := e.Detectors()
	if len(got) != 2 || got[0] != "frequency" || got[1] != "spec" {
		t.Fatalf("detectors=%v", got)
	}
	if !e.Remove("frequency") {
		t.Fatal("Remove failed")
	}
	if e.Remove("frequency") {
		t.Fatal("double Remove succeeded")
	}
	if len(e.Detectors()) != 1 {
		t.Fatal("detector not removed")
	}
}

func TestEngineAggregatesAndNotifies(t *testing.T) {
	e := NewEngine(NewSpecDetector())
	e.Train(makeTrace(sim.Second, cleanSpecs()))
	var notified []Alert
	e.OnAlert(func(a Alert) { notified = append(notified, a) })
	e.Observe(canRec(0, 0x999, nil))
	if len(e.Alerts) != 1 || len(notified) != 1 {
		t.Fatalf("alerts=%d notified=%d", len(e.Alerts), len(notified))
	}
	if s := e.Summary(); !strings.Contains(s, "spec=1") {
		t.Fatalf("summary=%q", s)
	}
}

func TestEngineAttachMedium(t *testing.T) {
	k := sim.NewKernel(1)
	bus := can.NewBus(k, "b", 500_000)
	tx := can.NewController("legit")
	rx := can.NewController("rx")
	bus.Attach(tx)
	bus.Attach(rx)

	spec := NewSpecDetector()
	spec.DLC[netif.MakeKey(netif.CAN, 0x100)] = 0
	e := NewEngine(spec)
	e.Attach(can.Netif(bus))

	_ = tx.Send(can.Frame{ID: 0x100}, nil) // known
	_ = tx.Send(can.Frame{ID: 0x400}, nil) // unknown -> alert
	_ = k.Run()
	if len(e.Alerts) != 1 || e.Alerts[0].ID != 0x400 {
		t.Fatalf("alerts=%v", e.Alerts)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	train := makeTrace(5*sim.Second, cleanSpecs())

	// Live trace: clean for 5s, then a 0x100 flood between 5s and 6s,
	// then clean again to 10s.
	live := makeTrace(10*sim.Second, cleanSpecs())
	for at := 5 * sim.Second; at < 6*sim.Second; at += sim.Millisecond {
		live.Records = append(live.Records, canRec(at, 0x100, constPayload(0)))
	}
	for i := 1; i < len(live.Records); i++ {
		for j := i; j > 0 && live.Records[j].At < live.Records[j-1].At; j-- {
			live.Records[j], live.Records[j-1] = live.Records[j-1], live.Records[j]
		}
	}

	windows := []Window{
		{Lo: 0, Hi: 5 * sim.Second, Attack: false},
		{Lo: 5 * sim.Second, Hi: 6 * sim.Second, Attack: true},
		{Lo: 6 * sim.Second, Hi: 10 * sim.Second, Attack: false},
	}
	m := Evaluate([]Detector{NewFrequencyDetector()}, train, live, windows, 200*sim.Millisecond)
	if m.TruePositives != 1 || m.FalseNegatives != 0 {
		t.Fatalf("metrics: %s", m)
	}
	if m.DetectionRate() != 1 {
		t.Fatalf("TPR=%v", m.DetectionRate())
	}
	if m.FalsePositives != 0 {
		t.Fatalf("FP=%d", m.FalsePositives)
	}
	if m.CleanWindows != 2 {
		t.Fatalf("clean windows=%d", m.CleanWindows)
	}
}

func TestMetricsDegenerate(t *testing.T) {
	var m Metrics
	if m.DetectionRate() != 0 || m.FalsePositiveRate() != 0 {
		t.Fatal("degenerate metrics not zero")
	}
	m = Metrics{TruePositives: 3, FalseNegatives: 1, FalsePositives: 2, CleanWindows: 4}
	if m.DetectionRate() != 0.75 {
		t.Fatalf("TPR=%v", m.DetectionRate())
	}
	if m.FalsePositiveRate() != 0.5 {
		t.Fatalf("FPR=%v", m.FalsePositiveRate())
	}
	if m.String() == "" {
		t.Fatal("empty String")
	}
}
