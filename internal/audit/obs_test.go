package audit

import (
	"testing"

	"autosec/internal/obs"
	"autosec/internal/sim"
)

func TestObsCountersMove(t *testing.T) {
	reg := obs.NewRegistry()
	l := New(func(msg []byte) ([]byte, error) { return append([]byte("mac:"), msg...), nil })
	l.Instrument(reg)

	l.Append(10, "gateway", "deny:chassis-writes")
	l.Append(20, "ids", "alert: spec id=0x666")
	if err := l.SealNow(30); err != nil {
		t.Fatal(err)
	}
	l.Append(40, "ota", "install ok")

	snap := func() map[string]float64 {
		out := map[string]float64{}
		for _, m := range reg.Snapshot() {
			out[m.Key] = m.Value
		}
		return out
	}

	s := snap()
	if s["audit/appends"] != 3 {
		t.Fatalf("appends = %v, want 3", s["audit/appends"])
	}
	if s["audit/seals"] != 1 {
		t.Fatalf("seals = %v, want 1", s["audit/seals"])
	}
	if s["audit/chain_failures"] != 0 {
		t.Fatalf("chain_failures = %v, want 0 before tampering", s["audit/chain_failures"])
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	if s = snap(); s["audit/chain_failures"] != 0 {
		t.Fatalf("chain_failures = %v after clean verify, want 0", s["audit/chain_failures"])
	}

	l.TamperWith(1, "alert: nothing to see here")
	if err := l.VerifyChain(); err == nil {
		t.Fatal("tampered chain must fail verification")
	}
	if s = snap(); s["audit/chain_failures"] != 1 {
		t.Fatalf("chain_failures = %v after tamper, want 1", s["audit/chain_failures"])
	}

	l.Truncate(1)
	if err := l.VerifySeals(); err == nil {
		t.Fatal("truncated log must fail seal verification")
	}
	if s = snap(); s["audit/chain_failures"] != 2 {
		t.Fatalf("chain_failures = %v after truncation, want 2", s["audit/chain_failures"])
	}
}

func TestUninstrumentedLogStillWorks(t *testing.T) {
	l := New(nil)
	l.Append(sim.Time(1), "x", "y")
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
	// Instrumenting against a nil registry is also a no-op.
	l.Instrument(nil)
	l.Append(sim.Time(2), "x", "z")
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
}
