package v2x

import (
	"fmt"
	"math"

	"autosec/internal/ieee1609"
	"autosec/internal/sim"
)

// Misbehavior detection: 1609.2 authentication proves *who* sent a BSM,
// not that its *content* is true. A credentialed insider can still lie
// about position or kinematics, so deployed V2X stacks pair verification
// with content plausibility checks and report offending certificates for
// revocation (PSIDMisbehavior). This file implements the receive-side
// checks the paper's Secure Interfaces layer needs beyond signatures.

// MisbehaviorKind classifies a finding.
type MisbehaviorKind string

// Misbehavior kinds.
const (
	// MisbehaviorRangeImplausible: the claimed position is farther away
	// than the radio could possibly reach.
	MisbehaviorRangeImplausible MisbehaviorKind = "range-implausible"
	// MisbehaviorKinematics: the sender teleported or exceeds feasible
	// acceleration between its own consecutive messages.
	MisbehaviorKinematics MisbehaviorKind = "kinematics"
	// MisbehaviorSpeedBound: the claimed speed exceeds the plausible
	// maximum for any road vehicle.
	MisbehaviorSpeedBound MisbehaviorKind = "speed-bound"
)

// MisbehaviorReport is one finding, attributable to a certificate.
type MisbehaviorReport struct {
	At     sim.Time
	Cert   ieee1609.HashedID8
	Kind   MisbehaviorKind
	Detail string
}

// MisbehaviorDetector applies plausibility checks to verified BSMs.
type MisbehaviorDetector struct {
	// RadioRangeM bounds how far a heard transmitter can really be
	// (with margin for the receiver's own position uncertainty).
	RadioRangeM float64
	// MaxSpeedMS bounds plausible vehicle speed (default 90 m/s).
	MaxSpeedMS float64
	// MaxAccelMS2 bounds plausible acceleration (default 12 m/s²).
	MaxAccelMS2 float64

	last map[ieee1609.HashedID8]lastSighting

	Reports []MisbehaviorReport
}

type lastSighting struct {
	at  sim.Time
	pos Position
}

// NewMisbehaviorDetector creates a detector for the given radio range.
func NewMisbehaviorDetector(radioRangeM float64) *MisbehaviorDetector {
	return &MisbehaviorDetector{
		RadioRangeM: radioRangeM,
		MaxSpeedMS:  90,
		MaxAccelMS2: 12,
		last:        make(map[ieee1609.HashedID8]lastSighting),
	}
}

// AttachTo wires the detector into an entity's verified-BSM stream. The
// receiver's own position grounds the range check.
func (d *MisbehaviorDetector) AttachTo(e *Entity) {
	e.OnBSM(func(at sim.Time, from *ieee1609.Certificate, b BSM) {
		d.Check(at, e.Pos(), from.ID(), b)
	})
}

func (d *MisbehaviorDetector) flag(at sim.Time, cert ieee1609.HashedID8, kind MisbehaviorKind, format string, args ...any) {
	d.Reports = append(d.Reports, MisbehaviorReport{
		At: at, Cert: cert, Kind: kind, Detail: fmt.Sprintf(format, args...),
	})
}

// Check evaluates one verified BSM received at receiverPos.
func (d *MisbehaviorDetector) Check(at sim.Time, receiverPos Position, cert ieee1609.HashedID8, b BSM) {
	// Range plausibility: we heard the transmission, so the sender is
	// within radio range; a claimed position far outside is a lie.
	if dist := receiverPos.Dist(b.Pos); dist > d.RadioRangeM*1.2 {
		d.flag(at, cert, MisbehaviorRangeImplausible,
			"claimed %.0fm away, radio reaches %.0fm", dist, d.RadioRangeM)
	}
	if b.SpeedMS > d.MaxSpeedMS {
		d.flag(at, cert, MisbehaviorSpeedBound, "claimed %.0f m/s", b.SpeedMS)
	}
	if prev, ok := d.last[cert]; ok {
		dt := (at - prev.at).Seconds()
		if dt > 0 {
			implied := b.Pos.Dist(prev.pos) / dt
			// Feasible displacement: claimed speed + acceleration headroom.
			bound := math.Max(b.SpeedMS, d.MaxSpeedMS) + d.MaxAccelMS2*dt
			if implied > bound {
				d.flag(at, cert, MisbehaviorKinematics,
					"implied %.0f m/s over %.2fs", implied, dt)
			}
		}
	}
	d.last[cert] = lastSighting{at: at, pos: b.Pos}
}

// OffendingCerts returns the distinct certificates reported, in first-
// seen order — the input to a CRL issuance decision.
func (d *MisbehaviorDetector) OffendingCerts() []ieee1609.HashedID8 {
	seen := make(map[ieee1609.HashedID8]bool)
	var out []ieee1609.HashedID8
	for _, r := range d.Reports {
		if !seen[r.Cert] {
			seen[r.Cert] = true
			out = append(out, r.Cert)
		}
	}
	return out
}

// CountByKind tallies reports per kind.
func (d *MisbehaviorDetector) CountByKind() map[MisbehaviorKind]int {
	out := make(map[MisbehaviorKind]int)
	for _, r := range d.Reports {
		out[r.Kind]++
	}
	return out
}
