package flexray

import (
	"errors"
	"testing"
	"testing/quick"

	"autosec/internal/sim"
)

func TestConfigCycleLength(t *testing.T) {
	cfg := DefaultConfig()
	// 60*50 + 200*5 + 1000 = 5000 macroticks of 1us = 5ms.
	if got := cfg.CycleLength(); got != 5*sim.Millisecond {
		t.Fatalf("cycle length %v, want 5ms", got)
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.StaticSlots = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero static slots accepted")
	}
}

func TestHeaderCRCDistinguishesSlots(t *testing.T) {
	a := HeaderCRC(1, 4)
	b := HeaderCRC(2, 4)
	if a == b {
		t.Fatal("header CRC identical for different slots")
	}
	if a != HeaderCRC(1, 4) {
		t.Fatal("header CRC not deterministic")
	}
	if a>>11 != 0 {
		t.Fatalf("header CRC %#x wider than 11 bits", a)
	}
}

func TestFrameCRC24DetectsFlipsProperty(t *testing.T) {
	f := func(payload []byte, idx, bit uint8) bool {
		if len(payload) == 0 {
			return true
		}
		orig := FrameCRC24(payload)
		if orig>>24 != 0 {
			return false
		}
		mut := append([]byte(nil), payload...)
		mut[int(idx)%len(mut)] ^= 1 << (bit % 8)
		return FrameCRC24(mut) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func newCluster(t *testing.T) (*sim.Kernel, *Cluster) {
	t.Helper()
	k := sim.NewKernel(1)
	c, err := NewCluster(k, "chassis", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return k, c
}

func TestStaticSlotDelivery(t *testing.T) {
	k, c := newCluster(t)
	err := c.AssignStatic(3, "brake-ecu", func(cycle int) []byte {
		return []byte{byte(cycle), 0xAA}
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []Frame
	c.OnReceive(func(_ sim.Time, f Frame) {
		if !f.NullFrame {
			got = append(got, f)
		}
	})
	_ = c.Start()
	_ = k.RunUntil(3 * c.Config().CycleLength())
	c.Stop()
	if len(got) != 3 {
		t.Fatalf("got %d frames, want 3", len(got))
	}
	for i, f := range got {
		if f.Slot != 3 || f.Cycle != i || f.Sender != "brake-ecu" {
			t.Fatalf("frame %d: %+v", i, f)
		}
		if f.Payload[0] != byte(i) {
			t.Fatalf("cycle counter payload mismatch: %+v", f)
		}
	}
}

func TestStaticSlotTiming(t *testing.T) {
	k, c := newCluster(t)
	_ = c.AssignStatic(1, "a", func(int) []byte { return []byte{1, 1} })
	_ = c.AssignStatic(10, "b", func(int) []byte { return []byte{2, 2} })
	var times []sim.Time
	c.OnReceive(func(at sim.Time, f Frame) { times = append(times, at) })
	_ = c.Start()
	_ = k.RunUntil(c.Config().CycleLength() - 1)
	c.Stop()
	if len(times) != 2 {
		t.Fatalf("got %d frames", len(times))
	}
	// Slot 1 fires at 0, slot 10 at 9 * 50us = 450us.
	if times[0] != 0 || times[1] != 450*sim.Microsecond {
		t.Fatalf("slot times %v", times)
	}
}

func TestSlotOwnershipExclusive(t *testing.T) {
	_, c := newCluster(t)
	_ = c.AssignStatic(5, "a", func(int) []byte { return nil })
	if err := c.AssignStatic(5, "b", func(int) []byte { return nil }); !errors.Is(err, ErrSlotOwned) {
		t.Fatalf("err=%v", err)
	}
	if err := c.AssignStatic(0, "c", func(int) []byte { return nil }); !errors.Is(err, ErrSlotRange) {
		t.Fatalf("err=%v", err)
	}
	if err := c.AssignStatic(SlotID(c.Config().StaticSlots+1), "c", func(int) []byte { return nil }); !errors.Is(err, ErrSlotRange) {
		t.Fatalf("err=%v", err)
	}
}

func TestNullFrames(t *testing.T) {
	k, c := newCluster(t)
	_ = c.AssignStatic(2, "idle-ecu", func(int) []byte { return nil })
	nulls := 0
	c.OnReceive(func(_ sim.Time, f Frame) {
		if f.NullFrame {
			nulls++
		}
	})
	_ = c.Start()
	_ = k.RunUntil(2 * c.Config().CycleLength())
	c.Stop()
	if nulls != 2 || c.NullFrames.Value != 2 {
		t.Fatalf("nulls=%d counter=%d", nulls, c.NullFrames.Value)
	}
}

func TestIntrusionCausesCollision(t *testing.T) {
	k, c := newCluster(t)
	_ = c.AssignStatic(7, "victim", func(int) []byte { return []byte{1, 2} })
	_ = c.Intrude(7, "attacker", func(int) []byte { return []byte{0xBA, 0xD0} })
	delivered := 0
	c.OnReceive(func(_ sim.Time, f Frame) {
		if !f.NullFrame {
			delivered++
		}
	})
	_ = c.Start()
	_ = k.RunUntil(5 * c.Config().CycleLength())
	c.Stop()
	if delivered != 0 {
		t.Fatalf("%d frames delivered despite collisions", delivered)
	}
	if c.Collisions.Value != 5 {
		t.Fatalf("collisions=%d, want 5", c.Collisions.Value)
	}
}

func TestIntruderAloneInEmptySlot(t *testing.T) {
	// An intruder transmitting in an unowned slot gets through — slot
	// ownership is configuration, not enforcement.
	k, c := newCluster(t)
	_ = c.Intrude(9, "attacker", func(int) []byte { return []byte{0xBA, 0xD0} })
	var got []Frame
	c.OnReceive(func(_ sim.Time, f Frame) { got = append(got, f) })
	_ = c.Start()
	_ = k.RunUntil(c.Config().CycleLength())
	c.Stop()
	if len(got) != 1 || got[0].Sender != "attacker" {
		t.Fatalf("got %+v", got)
	}
}

func TestDynamicSegmentPriorityAndStarvation(t *testing.T) {
	k, c := newCluster(t)
	// Fill most of the 200 minislots with a high-priority burst, then a
	// low-priority frame that must starve.
	big := make([]byte, 254) // needs 131 minislots
	_ = c.SendDynamic(2, "hi", big)
	mid := make([]byte, 120) // needs 64 -> total 195
	_ = c.SendDynamic(3, "mid", mid)
	_ = c.SendDynamic(4, "lo", make([]byte, 20)) // needs 14 > 5 left -> starved
	var got []Frame
	c.OnReceive(func(_ sim.Time, f Frame) { got = append(got, f) })
	_ = c.Start()
	_ = k.RunUntil(c.Config().CycleLength())
	c.Stop()
	if len(got) != 2 {
		t.Fatalf("dynamic frames delivered: %d", len(got))
	}
	if got[0].Sender != "hi" || got[1].Sender != "mid" {
		t.Fatalf("priority order wrong: %v, %v", got[0].Sender, got[1].Sender)
	}
	if c.DynStarved.Value != 1 {
		t.Fatalf("starved=%d", c.DynStarved.Value)
	}
}

func TestDynamicPayloadValidation(t *testing.T) {
	_, c := newCluster(t)
	if err := c.SendDynamic(1, "x", make([]byte, 3)); !errors.Is(err, ErrPayloadRange) {
		t.Fatalf("odd payload: err=%v", err)
	}
	if err := c.SendDynamic(1, "x", make([]byte, 256)); !errors.Is(err, ErrPayloadRange) {
		t.Fatalf("oversize payload: err=%v", err)
	}
}

func TestCycleCounterAdvances(t *testing.T) {
	k, c := newCluster(t)
	_ = c.Start()
	_ = k.RunUntil(10 * c.Config().CycleLength())
	c.Stop()
	if c.Cycle() != 10 {
		t.Fatalf("cycle=%d, want 10", c.Cycle())
	}
}

func TestDoubleStart(t *testing.T) {
	_, c := newCluster(t)
	_ = c.Start()
	if err := c.Start(); err == nil {
		t.Fatal("double start accepted")
	}
}
