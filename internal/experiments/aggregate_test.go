package experiments

import (
	"math"
	"testing"
)

func TestTCrit95(t *testing.T) {
	if got := tCrit95(1); got != 12.706 {
		t.Fatalf("t(1) = %v", got)
	}
	if got := tCrit95(7); got != 2.365 {
		t.Fatalf("t(7) = %v", got)
	}
	if got := tCrit95(200); got != 1.960 {
		t.Fatalf("t(200) = %v", got)
	}
	if got := tCrit95(0); got != 0 {
		t.Fatalf("t(0) = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	runs := []*Table{
		{Rows: [][]string{{"10"}}},
		{Rows: [][]string{{"14"}}},
	}
	mean, sd, half, lo, hi := summarize(runs, 0, 0)
	if mean != 12 || lo != 10 || hi != 14 {
		t.Fatalf("mean/lo/hi = %v/%v/%v", mean, lo, hi)
	}
	if math.Abs(sd-math.Sqrt(8)) > 1e-12 {
		t.Fatalf("sd = %v", sd)
	}
	wantHalf := 12.706 * math.Sqrt(8) / math.Sqrt(2)
	if math.Abs(half-wantHalf) > 1e-9 {
		t.Fatalf("half = %v, want %v", half, wantHalf)
	}
}
