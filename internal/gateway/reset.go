package gateway

import (
	"autosec/internal/netif"
	"autosec/internal/sim"
)

// Pooled-vehicle lifecycle support. MarkBaseline snapshots the gateway's
// post-construction wiring (attached domains, installed rules, observers,
// policy knobs); ResetToBaseline rewinds to that snapshot without
// reallocating: scenario domains and rules are dropped, quarantines are
// lifted, limiter buckets and counters are zeroed, observability detaches.
// Construction wiring — the per-domain ports and their route closures —
// survives untouched, so a reset gateway routes exactly like a fresh one.

// gwBaseline is the sealed post-construction state of a Gateway.
type gwBaseline struct {
	sealed        bool
	domains       int
	rules         int
	observers     int
	defaultAction Action
	latency       sim.Duration
}

// MarkBaseline records the gateway's current wiring as the reset target.
func (g *Gateway) MarkBaseline() {
	g.base = gwBaseline{
		sealed:        true,
		domains:       len(g.order),
		rules:         len(g.rules),
		observers:     len(g.observers),
		defaultAction: g.DefaultAction,
		latency:       g.Latency,
	}
}

// ResetToBaseline rewinds the gateway to its MarkBaseline snapshot.
func (g *Gateway) ResetToBaseline() {
	if !g.base.sealed {
		panic("gateway: ResetToBaseline before MarkBaseline")
	}
	for i := g.base.domains; i < len(g.order); i++ {
		delete(g.domains, g.order[i])
		g.order[i] = ""
	}
	g.order = g.order[:g.base.domains]
	for _, name := range g.order {
		d := g.domains[name]
		d.quarantined = false
		d.xlate = netif.Frame{}
		d.in = netif.Frame{}
		d.buf = d.buf[:0]
	}
	for i := g.base.rules; i < len(g.rules); i++ {
		g.rules[i] = nil
		g.states[i] = nil
	}
	g.rules = g.rules[:g.base.rules]
	g.states = g.states[:g.base.rules]
	for i, r := range g.rules {
		r.Matched.Value = 0
		r.RateDrops.Value = 0
		st := g.states[i]
		st.tokens, st.last, st.inited = 0, 0, false
	}
	g.DefaultAction = g.base.defaultAction
	g.Latency = g.base.latency
	g.Forwarded.Value = 0
	g.Blocked.Value = 0
	g.RateLimited.Value = 0
	g.QuarDrops.Value = 0
	g.XlateDrops.Value = 0
	for i := g.base.observers; i < len(g.observers); i++ {
		g.observers[i] = nil
	}
	g.observers = g.observers[:g.base.observers]
	g.obsTr = nil
	g.obsSub = 0
}
