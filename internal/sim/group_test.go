package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// groupRng is a tiny splitmix64 for driving randomized group topologies
// (test-local, independent of the kernel streams under test).
type groupRng uint64

func (r *groupRng) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *groupRng) intn(n int) int { return int(r.next() % uint64(n)) }

// TestGroupSingleMemberMatchesKernel pins the degenerate case: a group
// of one behaves exactly like its member kernel driven directly, since
// no message ever crosses a boundary and windows cover the whole queue.
func TestGroupSingleMemberMatchesKernel(t *testing.T) {
	runScript := func(k *Kernel, runUntil func(Time)) []string {
		var log []string
		var chain func(depth int) func()
		chain = func(depth int) func() {
			return func() {
				log = append(log, fmt.Sprintf("%d@%d", depth, k.Now()))
				if depth < 5 {
					k.After(Duration(10*(depth+1)), chain(depth+1))
				}
			}
		}
		k.At(3, chain(0))
		k.At(3, chain(2))
		k.At(7, chain(1))
		runUntil(400)
		log = append(log, fmt.Sprintf("end now=%d steps=%d", k.Now(), k.Steps()))
		return log
	}

	g := NewKernelGroup(42, 50)
	gk := g.Kernel(0)
	got := runScript(gk, func(t Time) { _ = g.RunUntil(t) })

	ref := NewKernel(memberSeed(42, 0))
	want := runScript(ref, func(t Time) { _ = ref.RunUntil(t) })

	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("single-member group diverged from plain kernel:\ngroup: %v\nkernel: %v", got, want)
	}
}

// buildGroupScenario wires a randomized multi-member workload: local
// event cascades plus cross-member message chains, every decision drawn
// from member-local kernel streams so the run is a pure function of the
// group seed. Returns the per-member logs (member-local, so no data
// races at any worker count) — callers concatenate them in member order
// for a deterministic fingerprint.
func buildGroupScenario(g *KernelGroup, members int, r *groupRng) []*[]string {
	logs := make([]*[]string, members)
	for i := 0; i < members; i++ {
		logs[i] = &[]string{}
	}
	L := g.Lookahead()
	var hop func(member, depth int) func()
	hop = func(member, depth int) func() {
		k := g.Kernel(member)
		return func() {
			at := k.Now()
			draw := k.Stream("hop").Uint64() % 7
			*logs[member] = append(*logs[member], fmt.Sprintf("m%d d%d @%d r%d", member, depth, at, draw))
			if depth <= 0 {
				return
			}
			if draw < 3 {
				k.After(Duration(1+draw*13), hop(member, depth-1))
			}
			// Cross-member hop: lands lookahead + jitter later.
			to := (member + 1 + int(draw)) % len(logs)
			sent := at
			g.Send(member, to, at+L+Duration(draw*31), func() {
				rk := g.Kernel(to)
				if rk.Now() < sent+L {
					*logs[to] = append(*logs[to], fmt.Sprintf("LOOKAHEAD VIOLATION at %d < %d", rk.Now(), sent+L))
					return
				}
				hop(to, depth-1)()
			})
		}
	}
	for i := 0; i < members; i++ {
		k := g.Kernel(i)
		for e := 0; e < 2+r.intn(4); e++ {
			k.At(Time(r.intn(200)), hop(i, 2+r.intn(4)))
		}
	}
	return logs
}

func groupFingerprint(g *KernelGroup, logs []*[]string) string {
	var b strings.Builder
	for i, lg := range logs {
		fmt.Fprintf(&b, "== member %d now=%d steps=%d pending=%d\n",
			i, g.Kernel(i).Now(), g.Kernel(i).Steps(), g.Kernel(i).Pending())
		for _, line := range *lg {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// TestGroupSerialParallelEquivalence is the core determinism property:
// across randomized topologies and message chains, a KernelGroup
// produces byte-identical execution (per-member event order, clocks,
// step counts, stream draws) at workers=1 and workers=4. Runs under
// -race in CI, which also proves the window/flush handoffs are properly
// synchronized.
func TestGroupSerialParallelEquivalence(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		r := groupRng(uint64(trial) * 977)
		members := 2 + r.intn(7)
		lookahead := Duration(20 + r.intn(100))
		horizon := Time(2000 + r.intn(3000))
		seed := r.next()

		run := func(workers int) string {
			g := NewKernelGroup(seed, lookahead)
			rr := r // copy: both runs consume identical topology draws
			logs := buildGroupScenario(g, members, &rr)
			g.SetWorkers(workers)
			if err := g.RunUntil(horizon); err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			fp := groupFingerprint(g, logs)
			if strings.Contains(fp, "VIOLATION") {
				t.Fatalf("trial %d workers %d: safe-horizon violated:\n%s", trial, workers, fp)
			}
			return fp
		}
		serial := run(1)
		parallel := run(4)
		if serial != parallel {
			t.Fatalf("trial %d (members=%d L=%d): workers=1 and workers=4 diverged:\n--- serial\n%s\n--- parallel\n%s",
				trial, members, lookahead, serial, parallel)
		}
	}
}

// TestGroupRunUntilAdvancesClocks pins the RunUntil contract: events at
// exactly t dispatch, later events stay queued, and every member clock
// lands on t — so a subsequent RunUntil(t') starts all members aligned.
func TestGroupRunUntilAdvancesClocks(t *testing.T) {
	g := NewKernelGroup(1, 10)
	var fired []string
	for i := 0; i < 3; i++ {
		i := i
		g.Kernel(i).At(Time(100+i), func() { fired = append(fired, fmt.Sprintf("m%d", i)) })
		g.Kernel(i).At(Time(500), func() { fired = append(fired, fmt.Sprintf("late%d", i)) })
	}
	if err := g.RunUntil(102); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(fired, ","); got != "m0,m1,m2" {
		t.Fatalf("fired %q, want m0,m1,m2", got)
	}
	for i := 0; i < 3; i++ {
		if now := g.Kernel(i).Now(); now != 102 {
			t.Fatalf("member %d clock %d, want 102", i, now)
		}
	}
	if g.Pending() != 3 {
		t.Fatalf("pending %d, want the 3 late events", g.Pending())
	}
	if err := g.RunUntil(500); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 6 {
		t.Fatalf("after second run fired %v", fired)
	}
}

// TestGroupSetupSendDeliveredOnNextRun pins that messages buffered
// between runs (coordinator-side Sends) flush before the first horizon
// computation, even when the receiver's queue is otherwise empty.
func TestGroupSetupSendDeliveredOnNextRun(t *testing.T) {
	g := NewKernelGroup(1, 10)
	g.Kernel(0)
	g.Kernel(1)
	delivered := false
	g.Send(0, 1, 10, func() { delivered = true })
	if err := g.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("setup-time message never delivered")
	}
	if now := g.Kernel(1).Now(); now != 20 {
		t.Fatalf("receiver clock %d, want 20", now)
	}
}

// TestGroupSendLookaheadViolationPanics: a message closer than the
// lookahead could land inside a window another member already
// dispatched, so Send must refuse it loudly.
func TestGroupSendLookaheadViolationPanics(t *testing.T) {
	g := NewKernelGroup(1, 100)
	g.Kernel(0)
	g.Kernel(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Send below the lookahead horizon did not panic")
		}
	}()
	g.Send(0, 1, 99, func() {})
}

// TestGroupHalt: a member halting mid-window stops the group at the
// round boundary with ErrHalted, leaving undispatched events queued.
func TestGroupHalt(t *testing.T) {
	g := NewKernelGroup(1, 10)
	k0 := g.Kernel(0)
	g.Kernel(1).At(5000, func() { t.Fatal("event beyond the halt round fired") })
	k0.At(10, func() { k0.Halt() })
	if err := g.RunUntil(9000); !errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	if g.Pending() != 1 {
		t.Fatalf("pending %d, want the stranded event", g.Pending())
	}
}

// TestGroupResetEquivalence: Reset(seed) must be indistinguishable from
// a fresh group built under that seed — including undelivered
// cross-member messages being dropped and recycled.
func TestGroupResetEquivalence(t *testing.T) {
	run := func(g *KernelGroup, seed uint64) string {
		r := groupRng(seed)
		logs := buildGroupScenario(g, g.Members(), &r)
		_ = g.RunUntil(1500)
		return groupFingerprint(g, logs)
	}

	reused := NewKernelGroup(7, 40)
	for i := 0; i < 4; i++ {
		reused.Kernel(i)
	}
	// Dirty the group: run one scenario, leave messages buffered.
	_ = run(reused, 7)
	reused.Send(0, 1, reused.Kernel(0).Now()+40, func() { panic("stale message survived Reset") })
	reused.Reset(99)
	got := run(reused, 99)

	fresh := NewKernelGroup(99, 40)
	for i := 0; i < 4; i++ {
		fresh.Kernel(i)
	}
	want := run(fresh, 99)

	if got != want {
		t.Fatalf("reset group diverged from fresh group:\n--- reset\n%s\n--- fresh\n%s", got, want)
	}
}

// TestGroupBarrierHookOrdering: hooks run single-threaded after every
// flush with a non-decreasing window limit, and observe all events the
// round dispatched (the property the vehicle audit-chain merge needs).
func TestGroupBarrierHookOrdering(t *testing.T) {
	g := NewKernelGroup(3, 25)
	var dispatched [2]int
	for i := 0; i < 2; i++ {
		i := i
		k := g.Kernel(i)
		k.Every(0, 10, func() { dispatched[i]++ })
	}
	var limits []Time
	seen := 0
	g.AtBarrier(func(limit Time) {
		limits = append(limits, limit)
		total := dispatched[0] + dispatched[1]
		if total < seen {
			t.Fatalf("barrier saw fewer events (%d) than the previous barrier (%d)", total, seen)
		}
		seen = total
	})
	g.SetWorkers(2)
	if err := g.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	if len(limits) == 0 {
		t.Fatal("barrier hook never ran")
	}
	for i := 1; i < len(limits); i++ {
		if limits[i] < limits[i-1] {
			t.Fatalf("window limits regressed: %v", limits)
		}
	}
	if seen != dispatched[0]+dispatched[1] || seen == 0 {
		t.Fatalf("final barrier missed events: saw %d, dispatched %v", seen, dispatched)
	}
}

// TestGroupMailboxSteadyStateAllocs pins the inter-kernel mailbox path
// — Send, flush, inject, recycle — at zero steady-state allocations per
// round-trip, with prebound message callbacks (the discipline the zonal
// backbone follows). CI gates on this test.
func TestGroupMailboxSteadyStateAllocs(t *testing.T) {
	g := NewKernelGroup(1, 100)
	k0, k1 := g.Kernel(0), g.Kernel(1)
	var ping, pong func()
	ping = func() { g.Send(1, 0, k1.Now()+100, pong) } // runs on member 1
	pong = func() { g.Send(0, 1, k0.Now()+100, ping) } // runs on member 0
	k0.At(0, func() { g.Send(0, 1, 100, ping) })

	next := Time(0)
	adv := func() {
		next += 1000
		_ = g.RunUntil(next)
	}
	for i := 0; i < 16; i++ {
		adv()
	}
	before := g.Steps()
	if n := testing.AllocsPerRun(500, adv); n != 0 {
		t.Fatalf("inter-kernel mailbox path allocates %.1f/advance, want 0", n)
	}
	if g.Steps() <= before {
		t.Fatal("messages stopped flowing during the measurement")
	}
}

// BenchmarkGroupMailbox measures the cross-kernel message round-trip
// (two Sends + two flush injections per iteration window). CI runs it
// with the 0 allocs/op gate.
func BenchmarkGroupMailbox(b *testing.B) {
	g := NewKernelGroup(1, 100)
	k0, k1 := g.Kernel(0), g.Kernel(1)
	var ping, pong func()
	ping = func() { g.Send(1, 0, k1.Now()+100, pong) }
	pong = func() { g.Send(0, 1, k0.Now()+100, ping) }
	k0.At(0, func() { g.Send(0, 1, 100, ping) })
	next := Time(0)
	for i := 0; i < 16; i++ {
		next += 1000
		_ = g.RunUntil(next)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next += 200 // one ping-pong round per iteration
		_ = g.RunUntil(next)
	}
}
