package core

import (
	"errors"
	"testing"
)

func TestLayerString(t *testing.T) {
	names := map[Layer]string{
		SecureInterfaces: "secure-interfaces",
		SecureGateway:    "secure-gateway",
		SecureNetworks:   "secure-networks",
		SecureProcessing: "secure-processing",
		AccessSecurity:   "access-security",
	}
	for l, want := range names {
		if got := l.String(); got != want {
			t.Errorf("%d.String()=%q", int(l), got)
		}
	}
}

func TestArchitectureInstallAndGet(t *testing.T) {
	a := NewArchitecture()
	if err := a.Install(SecureProcessing, Implementation{Name: "she", Version: 1}); err != nil {
		t.Fatal(err)
	}
	impl, err := a.Get(SecureProcessing, "she")
	if err != nil || impl.Version != 1 {
		t.Fatalf("get: %+v %v", impl, err)
	}
	if _, err := a.Get(SecureProcessing, "ghost"); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("err=%v", err)
	}
	if _, err := a.Get(Layer(99), "x"); !errors.Is(err, ErrBadLayer) {
		t.Fatalf("err=%v", err)
	}
	if err := a.Install(Layer(-1), Implementation{}); !errors.Is(err, ErrBadLayer) {
		t.Fatalf("err=%v", err)
	}
}

func TestArchitectureUpgradeMonotonic(t *testing.T) {
	a := NewArchitecture()
	_ = a.Install(SecureInterfaces, Implementation{Name: "v2x", Version: 2})
	if err := a.Install(SecureInterfaces, Implementation{Name: "v2x", Version: 2}); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("same version: %v", err)
	}
	if err := a.Install(SecureInterfaces, Implementation{Name: "v2x", Version: 1}); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("downgrade: %v", err)
	}
	if err := a.Install(SecureInterfaces, Implementation{Name: "v2x", Version: 3}); err != nil {
		t.Fatal(err)
	}
	impl, _ := a.Get(SecureInterfaces, "v2x")
	if impl.Version != 3 {
		t.Fatalf("version=%d", impl.Version)
	}
	if len(a.UpgradeLog) != 2 {
		t.Fatalf("log=%v", a.UpgradeLog)
	}
}

func TestArchitectureDeprecationLifecycle(t *testing.T) {
	a := NewArchitecture()
	_ = a.Install(SecureProcessing, Implementation{Name: "aes128-suite", Version: 1})
	if !a.SecurityCurrent() {
		t.Fatal("fresh architecture not current")
	}
	if err := a.Deprecate(SecureProcessing, "aes128-suite"); err != nil {
		t.Fatal(err)
	}
	if a.SecurityCurrent() {
		t.Fatal("deprecated capability not flagged")
	}
	dep := a.DeprecatedList()
	if len(dep) != 1 || dep[0] != "secure-processing/aes128-suite" {
		t.Fatalf("deprecated=%v", dep)
	}
	// Upgrading (installing a newer version) clears the flag.
	if err := a.Install(SecureProcessing, Implementation{Name: "aes128-suite", Version: 2}); err != nil {
		t.Fatal(err)
	}
	if !a.SecurityCurrent() {
		t.Fatal("upgrade did not clear deprecation")
	}
	if err := a.Deprecate(SecureProcessing, "ghost"); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("err=%v", err)
	}
}

func TestArchitectureInventory(t *testing.T) {
	a := NewArchitecture()
	_ = a.Install(SecureGateway, Implementation{Name: "gw", Version: 1})
	_ = a.Install(SecureGateway, Implementation{Name: "fw", Version: 4})
	inv := a.Inventory()
	gws := inv["secure-gateway"]
	if len(gws) != 2 || gws[0] != "fw@v4" || gws[1] != "gw@v1" {
		t.Fatalf("inventory=%v", gws)
	}
}
