package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"autosec/internal/can"
	"autosec/internal/core"
	"autosec/internal/gateway"
	"autosec/internal/netif"
	"autosec/internal/obs"
	"autosec/internal/sim"
)

func obsTestConfig(vin string, seed uint64) core.Config {
	return core.Config{VIN: vin, Seed: seed, Zonal: &core.ZonalConfig{
		Zones:        3,
		LocalDomains: []core.DomainSpec{{Name: "body", Kind: netif.CAN}},
	}}
}

// obsScenario is driveScenario's quieter sibling for flight-recorder
// tests: its traffic (chassis → infotainment) avoids the IDS tap on
// powertrain, so the untrained detectors stay silent, and every 7th
// vehicle (idx%7==3) quarantines the destination — dropping inbound
// backbone frames with audited "quarantined" verdicts — making exactly
// those vehicles "interesting" to the recorder.
func obsScenario(idx int, v *core.Vehicle) (string, error) {
	k := v.Kernel
	rules := []*gateway.Rule{{
		Name: "open", From: core.DomainChassis, To: []string{core.DomainInfotainment},
		IDLo: 0, IDHi: 0x7FF, Action: gateway.Allow,
	}}
	if v.Zonal != nil {
		v.Zonal.SetRules(rules)
	} else {
		v.Gateway.SetRules(rules)
	}
	c := can.NewController("src")
	v.Buses[core.DomainChassis].Attach(c)
	st := k.Stream("obs-test")
	k.Every(st.Duration(100*sim.Microsecond, sim.Millisecond), 500*sim.Microsecond, func() {
		_ = c.Send(can.Frame{ID: can.ID(0x200 + idx%8), Data: []byte{byte(idx)}}, nil)
	})
	if idx%7 == 3 {
		k.At(2*sim.Millisecond, func() {
			// Quarantine drops are audited on the ingress side, so the
			// destination must be the isolated party: the zone owning
			// infotainment (zonal) or the source domain (central, where
			// frames from a quarantined domain are what gets audited).
			if v.Zonal != nil {
				_ = v.Zonal.QuarantineZoneOf(core.DomainInfotainment)
			} else {
				_ = v.Gateway.Quarantine(core.DomainChassis)
			}
		})
	}
	if err := k.RunUntil(4 * sim.Millisecond); err != nil {
		return "", err
	}
	return fmt.Sprintf("idx=%d steps=%d audit=%d", idx, k.Steps(), v.Audit.Len()), nil
}

// TestDriveObsParInvariance is the tentpole acceptance gate: the merged
// fleet registry (snapshot AND Prometheus exposition bytes) and the kept
// flight-recorder traces must be byte-identical at 1 worker and at 8.
func TestDriveObsParInvariance(t *testing.T) {
	const n = 96
	opts := ObsOptions{Metrics: true, TraceRate: 0.25, TraceCapacity: 512, MaxTraces: 8}
	run := func(workers int) *ObsResult {
		_, res, err := DriveObs(context.Background(),
			Driver{Cfg: obsTestConfig("OBS-PAR", 11), N: n, Workers: workers}, opts, obsScenario)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	a, b := run(1), run(8)

	var pa, pb bytes.Buffer
	if err := a.Registry.WritePrometheus(&pa); err != nil {
		t.Fatal(err)
	}
	if err := b.Registry.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pa.Bytes(), pb.Bytes()) {
		t.Fatalf("merged registry exposition diverges across worker counts:\n--- par=1\n%s\n--- par=8\n%s", pa.String(), pb.String())
	}
	if pa.Len() == 0 {
		t.Fatal("merged registry is empty — instrumentation did not reach the vehicles")
	}

	if len(a.Traces) == 0 || len(a.Traces) > opts.MaxTraces {
		t.Fatalf("kept %d traces, want 1..%d", len(a.Traces), opts.MaxTraces)
	}
	if len(a.Traces) != len(b.Traces) {
		t.Fatalf("trace counts diverge: %d vs %d", len(a.Traces), len(b.Traces))
	}
	for i := range a.Traces {
		ta, tb := a.Traces[i], b.Traces[i]
		if ta.Index != tb.Index || ta.Seed != tb.Seed || ta.Interesting != tb.Interesting {
			t.Fatalf("trace %d metadata diverges: %+v vs %+v", i, ta, tb)
		}
		if i > 0 && a.Traces[i-1].Index >= ta.Index {
			t.Fatalf("traces not in index order: %d then %d", a.Traces[i-1].Index, ta.Index)
		}
		var ba, bb bytes.Buffer
		if err := ta.Tracer.WriteChromeTrace(&ba); err != nil {
			t.Fatal(err)
		}
		if err := tb.Tracer.WriteChromeTrace(&bb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Fatalf("trace for vehicle %d diverges across worker counts", ta.Index)
		}
		if ba.Len() < 10 {
			t.Fatalf("trace for vehicle %d is empty", ta.Index)
		}
	}
}

// TestDriveObsMergedEqualsUnsharded cross-checks the merge point itself:
// the fleet registry must equal a manual index-order fold over freshly
// instrumented, individually driven vehicles.
func TestDriveObsMergedEqualsUnsharded(t *testing.T) {
	const n = 24
	cfg := obsTestConfig("OBS-FOLD", 7)
	_, res, err := DriveObs(context.Background(),
		Driver{Cfg: cfg, N: n, Workers: 4}, ObsOptions{Metrics: true}, obsScenario)
	if err != nil {
		t.Fatal(err)
	}

	want := obs.NewRegistry()
	pool := core.NewVehiclePool(cfg)
	for idx := 0; idx < n; idx++ {
		v, err := pool.Acquire(VehicleSeed(cfg.Seed, idx))
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		v.Instrument(nil, reg)
		if _, err := obsScenario(idx, v); err != nil {
			t.Fatal(err)
		}
		reg.Materialize()
		pool.Release(v)
		if err := want.Merge(reg); err != nil {
			t.Fatal(err)
		}
	}

	var a, b bytes.Buffer
	if err := want.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := res.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("DriveObs merge diverges from the manual index-order fold:\n--- manual\n%s\n--- DriveObs\n%s", a.String(), b.String())
	}
}

// TestDriveObsInterestingAlwaysKept pins the forensic half of the flight
// recorder: with a sampling rate too small to select anyone, exactly the
// incident vehicles (obsScenario quarantines idx%7==3) keep traces.
func TestDriveObsInterestingAlwaysKept(t *testing.T) {
	const n = 42
	_, res, err := DriveObs(context.Background(),
		Driver{Cfg: obsTestConfig("OBS-INT", 3), N: n, Workers: 4},
		ObsOptions{TraceRate: 1e-12, TraceCapacity: 256}, obsScenario)
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for idx := 0; idx < n; idx++ {
		if idx%7 == 3 {
			want = append(want, idx)
		}
	}
	if len(res.Traces) != len(want) {
		t.Fatalf("kept %d traces, want the %d incident vehicles %v", len(res.Traces), len(want), want)
	}
	for i, tr := range res.Traces {
		if tr.Index != want[i] || !tr.Interesting {
			t.Fatalf("trace %d = {Index:%d Interesting:%v}, want {Index:%d Interesting:true}", i, tr.Index, tr.Interesting, want[i])
		}
		if tr.Seed != VehicleSeed(3, tr.Index) {
			t.Fatalf("trace %d seed mismatch", i)
		}
	}
	if res.Stats.TracesInteresting != len(want) || res.Stats.TracesKept != len(want) {
		t.Fatalf("stats = %+v, want %d interesting traces", res.Stats, len(want))
	}
}

// TestDriveObsMaxTracesPriority: when the sample exceeds the bound,
// incident vehicles win and the kept set is worker-count invariant.
func TestDriveObsMaxTracesPriority(t *testing.T) {
	const n, max = 56, 6
	run := func(workers int) *ObsResult {
		_, res, err := DriveObs(context.Background(),
			Driver{Cfg: obsTestConfig("OBS-MAX", 5), N: n, Workers: workers},
			ObsOptions{TraceRate: 1, TraceCapacity: 256, MaxTraces: max}, obsScenario)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if len(a.Traces) != max {
		t.Fatalf("kept %d traces, want the bound %d (rate=1 samples everyone)", len(a.Traces), max)
	}
	for i := range a.Traces {
		if a.Traces[i].Index != b.Traces[i].Index || a.Traces[i].Interesting != b.Traces[i].Interesting {
			t.Fatalf("kept set diverges across worker counts at %d: %+v vs %+v", i, a.Traces[i], b.Traces[i])
		}
	}
	// All incident vehicles that fit must be present: obsScenario makes
	// 8 of 56 vehicles incidents, which exceeds max, so every kept trace
	// must be an incident one and they must be the lowest-indexed ones.
	for i, tr := range a.Traces {
		if !tr.Interesting {
			t.Fatalf("trace %d (vehicle %d) is non-incident despite incident overflow", i, tr.Index)
		}
		if want := 7*i + 3; tr.Index != want {
			t.Fatalf("trace %d kept vehicle %d, want lowest-indexed incidents first (%d)", i, tr.Index, want)
		}
	}
}

func TestTraceSampledDeterministicAndRateShaped(t *testing.T) {
	const base, n = 99, 20_000
	hits := 0
	for idx := 0; idx < n; idx++ {
		s := TraceSampled(base, idx, 0.1)
		if s != TraceSampled(base, idx, 0.1) {
			t.Fatal("sampling decision must be deterministic")
		}
		if s {
			hits++
		}
	}
	if hits < n/10-400 || hits > n/10+400 {
		t.Fatalf("rate 0.1 over %d vehicles kept %d, want ~%d", n, hits, n/10)
	}
	if TraceSampled(base, 1, 0) || !TraceSampled(base, 1, 1) {
		t.Fatal("rate 0 must drop and rate 1 must keep")
	}
}

// TestFleetMergeSteadyStateAllocs is the CI alloc gate for the merge hot
// path: once the fleet registry holds the union of keys, folding another
// vehicle's shard must not touch the allocator. Both merge paths are
// pinned — the flat shard fold DriveObs uses at the barrier, and the
// registry-to-registry Merge it is pinned byte-identical to.
func TestFleetMergeSteadyStateAllocs(t *testing.T) {
	cfg := obsTestConfig("OBS-ALLOC", 13)
	pool := core.NewVehiclePool(cfg)
	v, err := pool.Acquire(VehicleSeed(cfg.Seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	v.Instrument(nil, reg)
	if _, err := obsScenario(0, v); err != nil {
		t.Fatal(err)
	}
	layout := obs.NewShardLayout(reg)
	shard := layout.Export(reg)
	reg.Materialize()
	pool.Release(v)

	fleet := obs.NewRegistry()
	if err := layout.MergeInto(fleet, shard); err != nil { // warm-up creates the keys
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := layout.MergeInto(fleet, shard); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("fleet shard merge steady state allocates %v allocs/vehicle, want 0", allocs)
	}

	fleet2 := obs.NewRegistry()
	if err := fleet2.Merge(reg); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := fleet2.Merge(reg); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("fleet registry merge steady state allocates %v allocs/vehicle, want 0", allocs)
	}
}

type countingObserver struct {
	mu       sync.Mutex
	vehicles int
	done     int
	last     DriveStats
}

func (c *countingObserver) VehicleDone(worker, done, total int) {
	c.mu.Lock()
	c.vehicles++
	c.mu.Unlock()
}

func (c *countingObserver) DriveDone(s DriveStats) {
	c.mu.Lock()
	c.done++
	c.last = s
	c.mu.Unlock()
}

// TestDriveObsObserverAndStats covers the telemetry half: per-vehicle
// callbacks, the one-shot completion callback, and pool stats. CI's race
// job runs this under -race, covering the concurrent callback contract
// and the atomic abort flag.
func TestDriveObsObserverAndStats(t *testing.T) {
	const n, workers = 40, 4
	obsv := &countingObserver{}
	_, res, err := DriveObs(context.Background(),
		Driver{Cfg: core.Config{VIN: "OBS-STAT", Seed: 2}, N: n, Workers: workers},
		ObsOptions{Metrics: true, Observer: obsv}, obsScenario)
	if err != nil {
		t.Fatal(err)
	}
	if obsv.vehicles != n || obsv.done != 1 {
		t.Fatalf("observer saw %d vehicles and %d completions, want %d and 1", obsv.vehicles, obsv.done, n)
	}
	s := res.Stats
	if s.Vehicles != n || s.Workers != workers {
		t.Fatalf("stats population = %+v, want %d vehicles on %d workers", s, n, workers)
	}
	if s.PoolMisses != workers || s.PoolHits != n-workers {
		t.Fatalf("pool stats = %d hits / %d misses, want %d / %d (one construction per worker)",
			s.PoolHits, s.PoolMisses, n-workers, workers)
	}
	if s.Wall <= 0 || s.VehiclesPerSec <= 0 {
		t.Fatalf("wall-clock stats must be populated: %+v", s)
	}
	if obsv.last.Vehicles != n {
		t.Fatalf("DriveDone stats = %+v", obsv.last)
	}
}

// TestDriveObsAbortUnderLoad exercises the atomic abort flag with the
// observability plane attached across many workers; the race job runs it
// under -race (satellite: mutex-per-vehicle replaced by atomic.Bool).
func TestDriveObsAbortUnderLoad(t *testing.T) {
	boom := errors.New("boom")
	_, _, err := DriveObs(context.Background(),
		Driver{Cfg: core.Config{VIN: "OBS-ABORT", Seed: 4}, N: 64, Workers: 8},
		ObsOptions{Metrics: true, TraceRate: 0.5, TraceCapacity: 128},
		func(idx int, v *core.Vehicle) (string, error) {
			if idx >= 24 {
				return "", boom
			}
			return obsScenario(idx, v)
		})
	if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "fleet: vehicle ") {
		t.Fatalf("want a per-vehicle wrapped boom, got %v", err)
	}
}

func TestDriveObsRejectsTracingOnPerZoneKernels(t *testing.T) {
	cfg := core.Config{VIN: "OBS-PZK", Seed: 6, Zonal: &core.ZonalConfig{Zones: 2, PerZoneKernels: true}}
	_, _, err := DriveObs(context.Background(), Driver{Cfg: cfg, N: 4, Workers: 1},
		ObsOptions{TraceRate: 0.5},
		func(idx int, v *core.Vehicle) (int, error) { return idx, nil })
	if err == nil || !strings.Contains(err.Error(), "PerZoneKernels") {
		t.Fatalf("tracing on a per-zone-kernel build must be rejected, got %v", err)
	}
	// Metrics-only must work on the same build.
	_, res, err := DriveObs(context.Background(), Driver{Cfg: cfg, N: 4, Workers: 2},
		ObsOptions{Metrics: true},
		func(idx int, v *core.Vehicle) (int, error) {
			return idx, v.Kernel.RunUntil(1_000_000)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Registry.Snapshot()) == 0 {
		t.Fatal("metrics-only on per-zone kernels must still merge a registry")
	}
}

func TestProgressWriter(t *testing.T) {
	var buf bytes.Buffer
	pw := NewProgressWriter(&buf, 20)
	_, res, err := DriveObs(context.Background(),
		Driver{Cfg: core.Config{VIN: "OBS-PW", Seed: 8}, N: 20, Workers: 2},
		ObsOptions{Observer: pw}, obsScenario)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "20/20 vehicles (100%)") {
		t.Fatalf("progress output missing completion line:\n%s", out)
	}
	if !strings.Contains(out, "vehicles/sec") || !strings.Contains(out, "pool") {
		t.Fatalf("summary line missing:\n%s", out)
	}
	_ = res
}

func TestWriteChromeTraces(t *testing.T) {
	dir := t.TempDir()
	_, res, err := DriveObs(context.Background(),
		Driver{Cfg: obsTestConfig("OBS-DIR", 9), N: 14, Workers: 2},
		ObsOptions{TraceRate: 1e-12, TraceCapacity: 128}, obsScenario)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := res.WriteChromeTraces(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(res.Traces) || len(paths) == 0 {
		t.Fatalf("wrote %d files for %d traces", len(paths), len(res.Traces))
	}
	if !strings.HasSuffix(paths[0], "vehicle-000003.trace.json") {
		t.Fatalf("unexpected first trace path %q (vehicle 3 is the first incident)", paths[0])
	}
}
