package v2x

import (
	"testing"

	"autosec/internal/sim"
)

// Saturate a receiver from two sender groups — near (10m) and far (250m)
// — and compare what the FIFO and prioritized pipelines lose.
func runSaturation(t *testing.T, prioritized bool) (*Entity, *sim.Kernel) {
	t.Helper()
	k := sim.NewKernel(9)
	pki := newPKI(t)
	vm := VerifyModel{VerifyTime: 10 * sim.Millisecond, QueueLimit: 8, Freshness: sim.Second, Prioritized: prioritized}
	f := NewField(k, Radio{RangeM: 300, LossProb: 0, PropDelayPerM: 4}, vm)
	// 8 near (80 msg/s, within the 100/s verify budget) + 22 far senders
	// push the total offered load to 300 msg/s — 3x capacity.
	for i := 0; i < 8; i++ {
		near := pki.vehicle(t, f, "near", Position{float64(i), 10}, 1, sim.Hour)
		near.StartBeacon(100 * sim.Millisecond)
	}
	for i := 0; i < 22; i++ {
		far := pki.vehicle(t, f, "far", Position{float64(i), 250}, 1, sim.Hour)
		far.StartBeacon(100 * sim.Millisecond)
	}
	rx := pki.vehicle(t, f, "rx", Position{7, 0}, 1, sim.Hour)
	_ = k.RunUntil(3 * sim.Second)
	return rx, k
}

func TestPrioritizedPipelineProtectsNearTraffic(t *testing.T) {
	fifo, _ := runSaturation(t, false)
	prio, _ := runSaturation(t, true)

	// Both pipelines saturate and drop.
	if fifo.DroppedQueue.Value == 0 || prio.DroppedQueue.Value == 0 {
		t.Fatalf("no saturation: fifo=%d prio=%d", fifo.DroppedQueue.Value, prio.DroppedQueue.Value)
	}
	// FIFO drops blindly: a substantial share of near messages lost.
	if fifo.NearDropped.Value == 0 {
		t.Fatalf("FIFO dropped no near traffic (near=%d far=%d)", fifo.NearDropped.Value, fifo.FarDropped.Value)
	}
	// The prioritized pipeline sheds (almost) exclusively far traffic.
	if prio.NearDropped.Value > prio.FarDropped.Value/10 {
		t.Fatalf("priority queue dropped near traffic: near=%d far=%d",
			prio.NearDropped.Value, prio.FarDropped.Value)
	}
	// And near-message latency is bounded by the short queue ahead of them.
	if prio.NearLatency.N() == 0 {
		t.Fatal("no near latencies observed")
	}
	if prio.NearLatency.Quantile(0.99) > fifo.NearLatency.Quantile(0.99) {
		t.Fatalf("priority near p99 %.1fms worse than FIFO %.1fms",
			prio.NearLatency.Quantile(0.99), fifo.NearLatency.Quantile(0.99))
	}
}

func TestPrioritizedPipelineIdleBehavesLikeFIFO(t *testing.T) {
	// Under light load the two pipelines verify the same messages.
	k := sim.NewKernel(9)
	pki := newPKI(t)
	vm := DefaultVerifyModel()
	vm.Prioritized = true
	f := NewField(k, Radio{RangeM: 300, LossProb: 0, PropDelayPerM: 4}, vm)
	tx := pki.vehicle(t, f, "tx", Position{10, 0}, 1, sim.Hour)
	rx := pki.vehicle(t, f, "rx", Position{0, 0}, 1, sim.Hour)
	stop := tx.StartBeacon(100 * sim.Millisecond)
	_ = k.RunUntil(2 * sim.Second)
	stop()
	if rx.VerifiedOK.Value < 15 || rx.DroppedQueue.Value != 0 {
		t.Fatalf("light-load priority pipeline: ok=%d dropped=%d", rx.VerifiedOK.Value, rx.DroppedQueue.Value)
	}
}
