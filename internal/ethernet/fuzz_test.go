package ethernet

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal feeds arbitrary byte captures to the wire parser. Every
// frame the parser accepts must survive a marshal/unmarshal round trip
// with identical fields, and the re-marshalled bytes must be a fixpoint —
// the normalised form a priority-only tag (VLAN id 0) collapses into.
func FuzzUnmarshal(f *testing.F) {
	// Untagged minimal frame.
	f.Add([]byte{
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
		0x02, 0x00, 0x00, 0x00, 0x00, 0x01,
		0x08, 0x00,
	})
	// Tagged frame, VLAN 5, with payload.
	f.Add([]byte{
		0x02, 0x00, 0x00, 0x00, 0x00, 0x02,
		0x02, 0x00, 0x00, 0x00, 0x00, 0x01,
		0x81, 0x00, 0x00, 0x05, 0x88, 0xB5,
		0xDE, 0xAD, 0xBE, 0xEF,
	})
	// Truncated tag.
	f.Add([]byte{
		0x02, 0x00, 0x00, 0x00, 0x00, 0x02,
		0x02, 0x00, 0x00, 0x00, 0x00, 0x01,
		0x81, 0x00, 0x00,
	})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := Unmarshal(b)
		if err != nil {
			return
		}
		wire, err := fr.Marshal()
		if err != nil {
			t.Fatalf("parsed frame does not marshal: %v (%+v)", err, fr)
		}
		fr2, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("marshalled bytes do not re-parse: %v (% X)", err, wire)
		}
		if fr2.Src != fr.Src || fr2.Dst != fr.Dst || fr2.VLAN != fr.VLAN ||
			fr2.EtherType != fr.EtherType || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("round-trip mismatch:\n first %+v\nsecond %+v", fr, fr2)
		}
		wire2, err := fr2.Marshal()
		if err != nil || !bytes.Equal(wire, wire2) {
			t.Fatalf("marshal not a fixpoint:\n first % X\nsecond % X (err %v)", wire, wire2, err)
		}
	})
}
