// Package safety models the functional-safety quarter of the paper's
// robustness taxonomy (Section 3): ISO 26262 ASIL determination from
// severity, exposure and controllability; hazard registers; and a
// redundancy model that finds single points of failure (SPF) — which the
// paper calls "unacceptable for automotive E/E systems" — and evaluates
// fault injections against it.
package safety

import (
	"errors"
	"fmt"
	"sort"
)

// Severity classifies potential harm (ISO 26262-3).
type Severity int

// Severity classes.
const (
	S0 Severity = iota // no injuries
	S1                 // light to moderate injuries
	S2                 // severe, survival probable
	S3                 // life-threatening, survival uncertain
)

// Exposure classifies the probability of the operational situation.
type Exposure int

// Exposure classes.
const (
	E0 Exposure = iota // incredible
	E1                 // very low
	E2                 // low
	E3                 // medium
	E4                 // high
)

// Controllability classifies how avoidable the harm is.
type Controllability int

// Controllability classes.
const (
	C0 Controllability = iota // controllable in general
	C1                        // simply controllable
	C2                        // normally controllable
	C3                        // difficult or uncontrollable
)

// ASIL is an Automotive Safety Integrity Level.
type ASIL int

// ASIL levels from non-hazardous to the highest integrity requirement.
const (
	QM ASIL = iota
	A
	B
	C
	D
)

// String names the level.
func (a ASIL) String() string {
	switch a {
	case QM:
		return "QM"
	case A:
		return "ASIL A"
	case B:
		return "ASIL B"
	case C:
		return "ASIL C"
	case D:
		return "ASIL D"
	default:
		return fmt.Sprintf("ASIL(%d)", int(a))
	}
}

// Determine implements the ISO 26262-3 ASIL determination table. Any
// class at its zero level (S0, E0, C0) yields QM; otherwise the level
// rises with S+E+C exactly as the standard's table does (sum 10 → D,
// 9 → C, 8 → B, 7 → A, below → QM).
func Determine(s Severity, e Exposure, c Controllability) ASIL {
	if s == S0 || e == E0 || c == C0 {
		return QM
	}
	switch int(s) + int(e) + int(c) {
	case 10:
		return D
	case 9:
		return C
	case 8:
		return B
	case 7:
		return A
	default:
		return QM
	}
}

// Hazard is one entry of a hazard analysis and risk assessment (HARA).
type Hazard struct {
	Name            string
	Description     string
	Severity        Severity
	Exposure        Exposure
	Controllability Controllability
}

// ASIL computes the hazard's integrity level.
func (h Hazard) ASIL() ASIL { return Determine(h.Severity, h.Exposure, h.Controllability) }

// Register is a hazard register.
type Register struct {
	Hazards []Hazard
}

// Add appends a hazard.
func (r *Register) Add(h Hazard) { r.Hazards = append(r.Hazards, h) }

// Highest reports the most demanding ASIL in the register.
func (r *Register) Highest() ASIL {
	top := QM
	for _, h := range r.Hazards {
		if a := h.ASIL(); a > top {
			top = a
		}
	}
	return top
}

// ByASIL groups hazard names per level.
func (r *Register) ByASIL() map[ASIL][]string {
	out := make(map[ASIL][]string)
	for _, h := range r.Hazards {
		a := h.ASIL()
		out[a] = append(out[a], h.Name)
	}
	for _, names := range out {
		sort.Strings(names)
	}
	return out
}

// Function is a vehicle function expressed as a redundancy structure in
// conjunctive normal form: the function is available while every clause
// retains at least one working component. A clause is a redundancy group
// ("either the primary brake ECU or the fallback path").
type Function struct {
	Name    string
	Clauses [][]string
}

// System is a set of functions over a component inventory.
type System struct {
	functions []Function
	failed    map[string]bool
}

// NewSystem creates an empty system.
func NewSystem() *System {
	return &System{failed: make(map[string]bool)}
}

// ErrEmptyClause rejects functions with an empty redundancy group, which
// would be unconditionally failed.
var ErrEmptyClause = errors.New("safety: function has an empty redundancy clause")

// AddFunction registers a function.
func (s *System) AddFunction(f Function) error {
	for _, cl := range f.Clauses {
		if len(cl) == 0 {
			return fmt.Errorf("%w: %s", ErrEmptyClause, f.Name)
		}
	}
	s.functions = append(s.functions, f)
	return nil
}

// Fail marks a component failed (fault injection).
func (s *System) Fail(component string) { s.failed[component] = true }

// Repair clears a component failure.
func (s *System) Repair(component string) { delete(s.failed, component) }

// Available reports whether the named function currently works.
func (s *System) Available(name string) bool {
	for _, f := range s.functions {
		if f.Name != name {
			continue
		}
		for _, clause := range f.Clauses {
			ok := false
			for _, c := range clause {
				if !s.failed[c] {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	return false
}

// FailedFunctions lists the functions currently unavailable.
func (s *System) FailedFunctions() []string {
	var out []string
	for _, f := range s.functions {
		if !s.Available(f.Name) {
			out = append(out, f.Name)
		}
	}
	sort.Strings(out)
	return out
}

// SinglePointsOfFailure returns the components whose lone failure would
// take down at least one function, assuming everything else healthy.
// These are exactly the members of singleton redundancy clauses.
func (s *System) SinglePointsOfFailure() []string {
	set := make(map[string]bool)
	for _, f := range s.functions {
		for _, clause := range f.Clauses {
			if len(clause) == 1 {
				set[clause[0]] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Components lists every component referenced by the system.
func (s *System) Components() []string {
	set := make(map[string]bool)
	for _, f := range s.functions {
		for _, clause := range f.Clauses {
			for _, c := range clause {
				set[c] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// FaultCampaign injects each component failure alone and reports which
// functions each one breaks — the exhaustive single-fault FMEA.
func (s *System) FaultCampaign() map[string][]string {
	out := make(map[string][]string)
	// Preserve existing failures? A campaign assumes a healthy baseline.
	saved := s.failed
	s.failed = make(map[string]bool)
	defer func() { s.failed = saved }()
	for _, c := range s.Components() {
		s.failed[c] = true
		if broken := s.FailedFunctions(); len(broken) > 0 {
			out[c] = broken
		}
		delete(s.failed, c)
	}
	return out
}
