// Conservative parallel discrete-event simulation: a KernelGroup runs
// several Kernels — one per model partition, e.g. one per vehicle zone —
// and lets them dispatch concurrently while keeping the overall event
// order byte-deterministic.
//
// The synchronization protocol is windowed conservative PDES (the
// bounded-lag / YAWNS family). The group owns a positive lookahead L:
// the minimum virtual-time distance any cross-member interaction must
// travel (for zonal vehicles, the backbone's encapsulation + switch-hop
// latency — no frame can cross zones faster). Each round:
//
//  1. Horizon: m = min over members of NextEventTime(). The window is
//     [m, m+L): no member can receive anything new below m+L, because a
//     message sent by an event at time t >= m arrives at t+L >= m+L.
//  2. Dispatch: every member drains its events with deadline < m+L, in
//     parallel. Members never touch each other's state directly;
//     cross-member effects go through Send, which buffers a timestamped
//     message on the *sender*.
//  3. Barrier: buffered messages flush into the receiving kernels in a
//     fixed order — receiver index, then sender index, then send order —
//     so tie-breaking at equal deadlines is identical no matter how many
//     worker goroutines ran the window.
//
// Deadlock freedom is structural: there are no pairwise channel
// dependencies to cycle on, only the global barrier, and every round
// dispatches at least the event at m (L > 0), so virtual time strictly
// advances while any events remain.
//
// Determinism: the window bound depends only on queue state, each
// member's in-window dispatch order is its own (when, seq) heap order,
// and the flush order is fixed — so the group's state evolution is a
// pure function of (seed, model), independent of SetWorkers. Workers=1
// is the serial reference the equivalence tests pin parallel runs
// against, byte for byte.
package sim

import "fmt"

// memberSeed derives member i's kernel seed from the group seed with a
// splitmix64 finalizer, so member streams are statistically independent
// and stable under topology growth (the derivation depends only on the
// index, never on creation order).
func memberSeed(seed uint64, i int) uint64 {
	z := seed + 0x9E3779B97F4A7C15*uint64(i+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// xMsg is one pooled inter-kernel message: a callback to inject into the
// receiving kernel at an absolute deadline. Nodes are owned by the
// sending member's free list; the coordinator recycles them at the
// barrier, which is never concurrent with the sender's window, so the
// pool needs no lock.
type xMsg struct {
	at Time
	fn func()
}

// groupMember pairs a kernel with its outgoing mailboxes.
type groupMember struct {
	k *Kernel
	// out[d] buffers messages addressed to member d, in send order.
	// Only the goroutine running this member's window appends; only the
	// coordinator (at the barrier) drains.
	out  [][]*xMsg
	free []*xMsg
}

func (m *groupMember) alloc() *xMsg {
	if n := len(m.free); n > 0 {
		x := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		return x
	}
	return &xMsg{}
}

// KernelGroup synchronizes a set of Kernels under a shared lookahead.
// Construct with NewKernelGroup; create members with Kernel(i). Topology
// (members, barrier hooks, workers) may only change between runs.
type KernelGroup struct {
	seed      uint64
	lookahead Duration
	members   []*groupMember
	workers   int
	barrier   []func(limit Time)
	halted    bool

	// worker plumbing, live only inside run() when workers > 1.
	nworkers int
	start    []chan Time
	done     chan bool
}

// NewKernelGroup creates an empty group. lookahead is the minimum
// virtual-time distance of every cross-member message and must be
// positive — it is what lets members dispatch a window in parallel.
func NewKernelGroup(seed uint64, lookahead Duration) *KernelGroup {
	if lookahead <= 0 {
		panic("sim: KernelGroup needs a positive lookahead")
	}
	return &KernelGroup{seed: seed, lookahead: lookahead, workers: 1}
}

// Kernel returns member i's kernel, creating members up to index i on
// first use. Member seeds derive from the group seed and the index, so
// the same (seed, index) always yields the same stream state regardless
// of how many members exist. Must not be called while a run is in
// progress.
func (g *KernelGroup) Kernel(i int) *Kernel {
	if i < 0 {
		panic("sim: negative kernel-group member index")
	}
	for len(g.members) <= i {
		idx := len(g.members)
		g.members = append(g.members, &groupMember{k: NewKernel(memberSeed(g.seed, idx))})
	}
	for _, m := range g.members {
		for len(m.out) < len(g.members) {
			m.out = append(m.out, nil)
		}
	}
	return g.members[i].k
}

// Members reports how many member kernels exist.
func (g *KernelGroup) Members() int { return len(g.members) }

// Lookahead reports the group's cross-member lookahead.
func (g *KernelGroup) Lookahead() Duration { return g.lookahead }

// SetWorkers picks how many goroutines dispatch windows: 1 (the
// default) runs members serially on the calling goroutine — the
// reference schedule — and n > 1 shards members across n goroutines.
// Output is byte-identical for every value.
func (g *KernelGroup) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	g.workers = n
}

// Workers reports the configured window parallelism.
func (g *KernelGroup) Workers() int { return g.workers }

// Steps reports the total events dispatched across all members.
func (g *KernelGroup) Steps() uint64 {
	var n uint64
	for _, m := range g.members {
		n += m.k.Steps()
	}
	return n
}

// Pending reports the total queued events across all members.
func (g *KernelGroup) Pending() int {
	n := 0
	for _, m := range g.members {
		n += m.k.Pending()
	}
	return n
}

// Now reports member 0's clock (after RunUntil, every member's clock
// equals the target time). Zero for an empty group.
func (g *KernelGroup) Now() Time {
	if len(g.members) == 0 {
		return 0
	}
	return g.members[0].k.Now()
}

// AtBarrier registers a hook the coordinator runs single-threaded after
// every round's flush, with the round's window limit. Hooks are where
// cross-member state merges safely (e.g. the vehicle audit chain): no
// member window is in flight while they run.
func (g *KernelGroup) AtBarrier(fn func(limit Time)) {
	g.barrier = append(g.barrier, fn)
}

// Halt stops the current run at the next round boundary. Model code
// running inside a member's window must halt its own kernel
// (Kernel.Halt) instead; the group notices at the barrier and stops.
// Calling Halt from another goroutine during a run is not safe.
func (g *KernelGroup) Halt() { g.halted = true }

// Send buffers a cross-member message: fn will run on member to's
// kernel at absolute time at. It must be called either from an event
// executing on member from's kernel, or from the coordinating goroutine
// between runs; at must be at least from's current time plus the group
// lookahead — violating that would let a message land inside a window
// another member already dispatched, so it panics (it always indicates
// a model bug, exactly like Kernel.At in the past).
//
// fn runs on the receiving kernel's goroutine; to stay allocation-free,
// senders should prebind fn once and reuse it (see the pooled message
// nodes in internal/zonal's partitioned backbone).
func (g *KernelGroup) Send(from, to int, at Time, fn func()) {
	s := g.members[from]
	if to < 0 || to >= len(g.members) {
		panic(fmt.Sprintf("sim: inter-kernel send to unknown member %d", to))
	}
	if at < s.k.now+g.lookahead {
		panic(fmt.Sprintf("sim: inter-kernel message at %v from member %d at %v violates lookahead %v",
			at, from, s.k.now, g.lookahead))
	}
	n := s.alloc()
	n.at = at
	n.fn = fn
	s.out[to] = append(s.out[to], n)
}

// flush injects every buffered message into its receiving kernel, in
// (receiver index, sender index, send order) — the fixed tie-break that
// makes rounds worker-count-independent — and recycles the nodes.
// Coordinator-only; never concurrent with member windows.
func (g *KernelGroup) flush() {
	for di, dst := range g.members {
		for _, src := range g.members {
			box := src.out[di]
			if len(box) == 0 {
				continue
			}
			for i, msg := range box {
				dst.k.At(msg.at, msg.fn)
				msg.fn = nil
				src.free = append(src.free, msg)
				box[i] = nil
			}
			src.out[di] = box[:0]
		}
	}
}

// round dispatches one window on every member and reports false if any
// member halted mid-window.
func (g *KernelGroup) round(limit Time) bool {
	if g.start == nil {
		ok := true
		for _, m := range g.members {
			if !m.k.DispatchBefore(limit) {
				ok = false
			}
		}
		return ok
	}
	for _, ch := range g.start {
		ch <- limit
	}
	ok := true
	for range g.start {
		if !<-g.done {
			ok = false
		}
	}
	return ok
}

// startWorkers spawns w window goroutines with a static member
// partition (worker wi owns members wi, wi+w, ...). Channel handoffs
// order every window after the previous flush and every flush after the
// windows it drains, which is the entire memory-model story: members
// only ever touch their own kernel and their own outgoing mailboxes.
func (g *KernelGroup) startWorkers(w int) {
	g.nworkers = w
	g.start = make([]chan Time, w)
	g.done = make(chan bool, w)
	for wi := 0; wi < w; wi++ {
		ch := make(chan Time, 1)
		g.start[wi] = ch
		go func(wi int, ch chan Time) {
			for limit := range ch {
				ok := true
				for mi := wi; mi < len(g.members); mi += w {
					if !g.members[mi].k.DispatchBefore(limit) {
						ok = false
					}
				}
				g.done <- ok
			}
		}(wi, ch)
	}
}

// stopWorkers shuts the window goroutines down at the end of a run.
func (g *KernelGroup) stopWorkers() {
	for _, ch := range g.start {
		close(ch)
	}
	g.start = nil
	g.nworkers = 0
}

// Run dispatches rounds until every member's queue drains (or Halt).
func (g *KernelGroup) Run() error { return g.run(0, true) }

// RunUntil dispatches rounds until no member has an event with deadline
// <= t, then sets every member's clock to t — the group analogue of
// Kernel.RunUntil. Returns ErrHalted if halted early.
func (g *KernelGroup) RunUntil(t Time) error { return g.run(t, false) }

func (g *KernelGroup) run(until Time, drain bool) error {
	g.halted = false
	if len(g.members) == 0 {
		return nil
	}
	// Deliver messages buffered between runs (setup-time Sends) so the
	// first horizon sees them.
	g.flush()
	w := g.workers
	if w > len(g.members) {
		w = len(g.members)
	}
	if w > 1 {
		g.startWorkers(w)
		defer g.stopWorkers()
	}
	for !g.halted {
		m := Never
		for _, mb := range g.members {
			if nt := mb.k.NextEventTime(); nt < m {
				m = nt
			}
		}
		if m == Never || (!drain && m > until) {
			break
		}
		limit := m + g.lookahead
		if limit < m { // overflow near Never
			limit = Never
		}
		if !drain {
			end := until
			if end != Never {
				end++ // events at exactly `until` belong to the run
			}
			if limit > end {
				limit = end
			}
		}
		ok := g.round(limit)
		g.flush()
		for _, fn := range g.barrier {
			fn(limit)
		}
		if !ok {
			g.halted = true
		}
	}
	if g.halted {
		return ErrHalted
	}
	if !drain {
		for _, mb := range g.members {
			if until > mb.k.now {
				mb.k.now = until
			}
		}
	}
	return nil
}

// Reset rewinds every member kernel to time zero under seeds derived
// from the new group seed, recycles any undelivered cross-member
// messages, and clears the halt flag. Barrier hooks and workers are
// construction wiring and survive — the group analogue of Kernel.Reset,
// and what core.VehiclePool leans on to recycle parallel vehicles.
func (g *KernelGroup) Reset(seed uint64) {
	g.seed = seed
	g.halted = false
	for i, m := range g.members {
		m.k.Reset(memberSeed(seed, i))
		for d, box := range m.out {
			for j, msg := range box {
				msg.fn = nil
				m.free = append(m.free, msg)
				box[j] = nil
			}
			m.out[d] = box[:0]
		}
	}
}
