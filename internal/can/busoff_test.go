package can

import (
	"testing"

	"autosec/internal/sim"
)

// The targeted bus-off attack (Cho & Shin, CCS 2016 — the modern form of
// the paper's availability attack model): an adversary forces bit errors
// on one victim's frames only, walking the victim's TEC up by 8 per
// transmission until it disconnects itself, while every other node keeps
// operating normally.

func TestTargetedBusOffAttack(t *testing.T) {
	k := sim.NewKernel(1)
	bus := NewBus(k, "pt", 500_000)
	victim := NewController("victim")
	bystander := NewController("bystander")
	rx := NewController("rx")
	bus.Attach(victim)
	bus.Attach(bystander)
	bus.Attach(rx)

	var victimDelivered, bystanderDelivered int
	rx.OnReceive(func(_ sim.Time, f *Frame, sender *Controller) {
		switch sender.Name {
		case "victim":
			victimDelivered++
		case "bystander":
			bystanderDelivered++
		}
	})

	// The attacker destroys every victim frame.
	bus.TargetedError = func(f *Frame, sender *Controller) bool {
		return sender.Name == "victim"
	}

	stopV := PeriodicSender(k, victim, Frame{ID: 0x100, Data: []byte{1}}, 10*sim.Millisecond, 0)
	stopB := PeriodicSender(k, bystander, Frame{ID: 0x200, Data: []byte{2}}, 10*sim.Millisecond, 0)
	_ = k.RunUntil(2 * sim.Second)
	stopV()
	stopB()

	if victim.State() != BusOff {
		t.Fatalf("victim state=%v (TEC=%d)", victim.State(), tecOf(victim))
	}
	if victimDelivered != 0 {
		t.Fatalf("victim frames delivered: %d", victimDelivered)
	}
	// The bystander is untouched: still error-active, traffic flowing.
	if bystander.State() != ErrorActive {
		t.Fatalf("bystander state=%v", bystander.State())
	}
	if bystanderDelivered < 150 {
		t.Fatalf("bystander delivered only %d frames", bystanderDelivered)
	}
	// The attack is visible to a bus tap: errored frames from the victim.
	if bus.FramesErrored.Value < 30 {
		t.Fatalf("errored frames=%d", bus.FramesErrored.Value)
	}
}

func tecOf(c *Controller) int { tec, _ := c.Counters(); return tec }

func TestTargetedBusOffSelectiveByID(t *testing.T) {
	// Targeting by identifier rather than sender: only the safety-critical
	// message is suppressed; the victim's other message still flows until
	// the shared TEC escalates.
	k := sim.NewKernel(1)
	bus := NewBus(k, "pt", 500_000)
	victim := NewController("victim")
	rx := NewController("rx")
	bus.Attach(victim)
	bus.Attach(rx)

	delivered := map[ID]int{}
	rx.OnReceive(func(_ sim.Time, f *Frame, _ *Controller) { delivered[f.ID]++ })

	bus.TargetedError = func(f *Frame, _ *Controller) bool { return f.ID == 0x100 }

	// Only a handful of targeted transmissions, spaced out so TEC decay
	// from successful 0x200 sends keeps the victim alive.
	stop1 := PeriodicSender(k, victim, Frame{ID: 0x100, Data: []byte{1}}, 100*sim.Millisecond, 0)
	stop2 := PeriodicSender(k, victim, Frame{ID: 0x200, Data: []byte{2}}, 5*sim.Millisecond, 0)
	_ = k.RunUntil(500 * sim.Millisecond)
	stop1()
	stop2()

	if delivered[0x100] != 0 {
		t.Fatalf("targeted ID delivered %d times", delivered[0x100])
	}
	if delivered[0x200] == 0 {
		t.Fatal("untargeted ID fully suppressed")
	}
}

func TestBusOffRecoveryUnderAttackRelapses(t *testing.T) {
	// Resetting a controller that is still under attack sends it straight
	// back to bus-off — the reason naive auto-recovery is not a defense.
	k := sim.NewKernel(1)
	bus := NewBus(k, "pt", 500_000)
	victim := NewController("victim")
	rx := NewController("rx")
	bus.Attach(victim)
	bus.Attach(rx)
	bus.TargetedError = func(_ *Frame, sender *Controller) bool { return sender.Name == "victim" }

	stop := PeriodicSender(k, victim, Frame{ID: 0x100}, 5*sim.Millisecond, 0)
	_ = k.RunUntil(sim.Second)
	if victim.State() != BusOff {
		t.Fatal("precondition: not bus-off")
	}
	victim.Reset()
	_ = k.RunUntil(k.Now() + sim.Second)
	stop()
	if victim.State() != BusOff {
		t.Fatalf("victim state after naive recovery: %v", victim.State())
	}
	if victim.BusOffEvents.Value < 2 {
		t.Fatalf("bus-off events=%d, want relapse", victim.BusOffEvents.Value)
	}
}
