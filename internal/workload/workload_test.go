package workload

import (
	"testing"

	"autosec/internal/can"
	"autosec/internal/sim"
)

func TestMatricesWellFormed(t *testing.T) {
	for _, specs := range [][]MessageSpec{PowertrainMatrix(), BodyMatrix()} {
		seen := make(map[can.ID]bool)
		for _, s := range specs {
			if s.Period <= 0 || s.Size < 1 || s.Size > 8 || s.Sender == "" {
				t.Fatalf("bad spec %+v", s)
			}
			if seen[s.ID] {
				t.Fatalf("duplicate ID %#x", s.ID)
			}
			seen[s.ID] = true
			if f := (can.Frame{ID: s.ID, Data: make([]byte, s.Size)}); f.Validate() != nil {
				t.Fatalf("invalid frame for %+v", s)
			}
		}
	}
}

func TestSyntheticTraceShape(t *testing.T) {
	specs := PowertrainMatrix()
	tr := SyntheticTrace(specs, 10*sim.Second, 1, 0.01)
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	// Time ordered.
	for i := 1; i < tr.Len(); i++ {
		if tr.Records[i].At < tr.Records[i-1].At {
			t.Fatalf("trace out of order at %d", i)
		}
	}
	// The 10ms message appears ~1000 times; the 1s message ~10.
	fast := len(tr.ByID(0x0C0))
	slow := len(tr.ByID(0x4A0))
	if fast < 950 || fast > 1050 {
		t.Fatalf("fast count=%d", fast)
	}
	if slow < 8 || slow > 12 {
		t.Fatalf("slow count=%d", slow)
	}
	// Every matrix ID is present.
	if got := len(tr.IDs()); got != len(specs) {
		t.Fatalf("distinct IDs=%d, want %d", got, len(specs))
	}
}

func TestSyntheticTraceDeterministic(t *testing.T) {
	a := SyntheticTrace(PowertrainMatrix(), 2*sim.Second, 7, 0.05)
	b := SyntheticTrace(PowertrainMatrix(), 2*sim.Second, 7, 0.05)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Records {
		if a.Records[i].At != b.Records[i].At || a.Records[i].Frame.ID != b.Records[i].Frame.ID {
			t.Fatalf("records differ at %d", i)
		}
	}
}

func TestStartSendersOnBus(t *testing.T) {
	k := sim.NewKernel(1)
	bus := can.NewBus(k, "pt", 500_000)
	trace := can.Recorder(bus)
	ctrls, stop := StartSenders(k, bus, PowertrainMatrix(), 0.01)
	_ = k.RunUntil(5 * sim.Second)
	stop()
	if len(ctrls) == 0 {
		t.Fatal("no controllers created")
	}
	if trace.Len() < 1000 {
		t.Fatalf("only %d frames in 5s", trace.Len())
	}
	// Bus load for this matrix at 500kbit/s is tens of percent at most.
	if l := bus.Load(); l < 0.02 || l > 0.6 {
		t.Fatalf("bus load %.3f", l)
	}
	// One controller per distinct sender.
	senders := make(map[string]bool)
	for _, s := range PowertrainMatrix() {
		senders[s.Sender] = true
	}
	if len(ctrls) != len(senders) {
		t.Fatalf("controllers=%d senders=%d", len(ctrls), len(senders))
	}
}

func TestCycleAtAndWrap(t *testing.T) {
	c := CommuteCycle()
	if got := c.At(sim.Minute).Name; got != "residential" {
		t.Fatalf("at 1m: %s", got)
	}
	if got := c.At(5 * sim.Minute).Name; got != "highway" {
		t.Fatalf("at 5m: %s", got)
	}
	if got := c.At(11 * sim.Minute).Name; got != "downtown" {
		t.Fatalf("at 11m: %s", got)
	}
	// Wraps after 12 minutes.
	if got := c.At(13 * sim.Minute).Name; got != "residential" {
		t.Fatalf("wrapped at 13m: %s", got)
	}
	if c.Length() != 12*sim.Minute {
		t.Fatalf("length=%v", c.Length())
	}
}

func TestCycleEmpty(t *testing.T) {
	var c Cycle
	if c.Length() != 0 {
		t.Fatal("empty length")
	}
	if p := c.At(sim.Second); p.Name != "" {
		t.Fatal("empty cycle phase")
	}
}

func TestCityVsHighwayShape(t *testing.T) {
	city := CityCycle().At(0)
	hwy := HighwayCycle().At(0)
	if city.PedestrianDensity <= hwy.PedestrianDensity {
		t.Fatal("city not denser than highway")
	}
	if city.SpeedMS >= hwy.SpeedMS {
		t.Fatal("city not slower than highway")
	}
}

// streamSuffix must keep the historical single-rune encoding for valid
// runes (seed compatibility) and fall back to an injective hex form for
// everything the rune conversion would collapse to U+FFFD.
func TestStreamSuffix(t *testing.T) {
	cases := []struct {
		id   can.ID
		want string
	}{
		{0x155, string(rune(0x155))}, // valid rune: legacy encoding
		{0x0C0, string(rune(0x0C0))}, // valid rune: legacy encoding
		{0xD800, "0xd800"},           // surrogate low bound
		{0xDFFF, "0xdfff"},           // surrogate high bound
		{0xFFFD, "0xfffd"},           // U+FFFD itself is ambiguous
		{0x110000, "0x110000"},       // past Unicode max
		{0xFFFFFFFF, "0xffffffff"},   // negative as rune
	}
	for _, c := range cases {
		if got := streamSuffix(c.id); got != c.want {
			t.Errorf("streamSuffix(%#x) = %q, want %q", c.id, got, c.want)
		}
	}
	// Injectivity across the lossy range: every surrogate ID gets its own
	// suffix instead of collapsing onto U+FFFD.
	seen := make(map[string]can.ID)
	for id := can.ID(0xD800); id <= 0xDFFF; id++ {
		s := streamSuffix(id)
		if prev, dup := seen[s]; dup {
			t.Fatalf("suffix %q shared by %#x and %#x", s, prev, id)
		}
		seen[s] = id
	}
}

// Two senders whose IDs both land in the surrogate range used to share
// one jitter stream (both names ended in U+FFFD) and so emitted perfectly
// correlated traffic. Pin that their traces now differ.
func TestSurrogateIDsGetDistinctStreams(t *testing.T) {
	specs := []MessageSpec{
		{ID: 0xD800, Period: 10 * sim.Millisecond, Size: 8, Sender: "ecu-a"},
		{ID: 0xD801, Period: 10 * sim.Millisecond, Size: 8, Sender: "ecu-b"},
	}
	tr := SyntheticTrace(specs, 2*sim.Second, 42, 0.2)
	a := tr.ByID(0xD800)
	b := tr.ByID(0xD801)
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("missing records: %d / %d", len(a), len(b))
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	same := true
	for i := 0; i < n; i++ {
		if a[i].At != b[i].At {
			same = false
			break
		}
	}
	if same && len(a) == len(b) {
		t.Fatal("surrogate-range IDs still share one jitter stream (identical timestamps)")
	}
}

// Equal-timestamp records must serialize in a pinned order: At, then ID,
// then insertion order. The old quicksort scrambled ties.
func TestSortTraceStableTiebreak(t *testing.T) {
	tr := &can.Trace{}
	// Many records at few distinct timestamps, inserted in a known order,
	// with duplicate (At, ID) pairs distinguished by payload.
	rng := sim.NewStream(3, "sorttest")
	for i := 0; i < 500; i++ {
		tr.Records = append(tr.Records, can.Record{
			At:     sim.Time(rng.Intn(5)) * sim.Millisecond,
			Frame:  can.Frame{ID: can.ID(rng.Intn(3)), Data: []byte{byte(i), byte(i >> 8)}},
			Sender: "s",
		})
	}
	// Reference: explicit index tiebreak on a copy.
	type keyed struct {
		rec can.Record
		idx int
	}
	ref := make([]keyed, len(tr.Records))
	for i, r := range tr.Records {
		ref[i] = keyed{r, i}
	}
	for i := 1; i < len(ref); i++ { // insertion sort with full key: At, ID, idx
		for j := i; j > 0; j-- {
			a, b := ref[j-1], ref[j]
			before := b.rec.At < a.rec.At ||
				(b.rec.At == a.rec.At && b.rec.Frame.ID < a.rec.Frame.ID) ||
				(b.rec.At == a.rec.At && b.rec.Frame.ID == a.rec.Frame.ID && b.idx < a.idx)
			if !before {
				break
			}
			ref[j-1], ref[j] = ref[j], ref[j-1]
		}
	}
	sortTrace(tr)
	for i := range tr.Records {
		got, want := tr.Records[i], ref[i].rec
		if got.At != want.At || got.Frame.ID != want.Frame.ID ||
			len(got.Frame.Data) != len(want.Frame.Data) ||
			got.Frame.Data[0] != want.Frame.Data[0] || got.Frame.Data[1] != want.Frame.Data[1] {
			t.Fatalf("record %d: got (At=%v ID=%#x data=%v), want (At=%v ID=%#x data=%v)",
				i, got.At, got.Frame.ID, got.Frame.Data, want.At, want.Frame.ID, want.Frame.Data)
		}
	}
}

// Workload generation must be reproducible under parallel execution: N
// goroutines generating the same trace (and driving the same senders on
// private kernels) all observe identical outputs.
func TestWorkloadParallelDeterministic(t *testing.T) {
	const par = 8
	type result struct {
		synth *can.Trace
		bus   *can.Trace
	}
	results := make([]result, par)
	done := make(chan int, par)
	for w := 0; w < par; w++ {
		go func(w int) {
			synth := SyntheticTrace(PowertrainMatrix(), 2*sim.Second, 11, 0.05)
			k := sim.NewKernel(11)
			bus := can.NewBus(k, "pt", 500_000)
			rec := can.Recorder(bus)
			_, stop := StartSenders(k, bus, PowertrainMatrix(), 0.01)
			_ = k.RunUntil(2 * sim.Second)
			stop()
			results[w] = result{synth: synth, bus: rec}
			done <- w
		}(w)
	}
	for i := 0; i < par; i++ {
		<-done
	}
	for w := 1; w < par; w++ {
		for name, pair := range map[string][2]*can.Trace{
			"synthetic": {results[0].synth, results[w].synth},
			"bus":       {results[0].bus, results[w].bus},
		} {
			a, b := pair[0], pair[1]
			if a.Len() != b.Len() {
				t.Fatalf("%s trace: worker %d length %d != worker 0 length %d", name, w, b.Len(), a.Len())
			}
			for i := range a.Records {
				ra, rb := a.Records[i], b.Records[i]
				if ra.At != rb.At || ra.Frame.ID != rb.Frame.ID || ra.Sender != rb.Sender {
					t.Fatalf("%s trace: worker %d diverges at record %d", name, w, i)
				}
			}
		}
	}
}
