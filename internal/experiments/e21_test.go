package experiments

import "testing"

// TestE21ParallelMatchesSerial pins the medium-IDS experiment's
// parallel-build invariance directly on the artifact: the E21 table
// rendered from a multi-worker per-zone-kernel run is byte-identical to
// the serial reference run (the one the golden file captures). Every
// attack medium lives on an extra domain sharded into zone 0, so the
// detection plane never observes across kernels. Run under -race to
// also certify the synchronization.
func TestE21ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full 8-row scenario matrix twice")
	}
	want := E21MediumIDSWith(1, 1).String()
	for _, workers := range []int{2, 8} {
		got := E21MediumIDSWith(1, workers).String()
		if got != want {
			t.Fatalf("workers=%d table diverged from serial:\nserial:\n%s\nparallel:\n%s",
				workers, want, got)
		}
	}
}
