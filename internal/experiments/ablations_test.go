package experiments

import (
	"strings"
	"testing"
)

func TestA1MACTruncationShape(t *testing.T) {
	tb := A1MACTruncation(1)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows=%d", len(tb.Rows))
	}
	// Payload budget shrinks monotonically with MAC width.
	prev := 99.0
	for i := range tb.Rows {
		left := cellF(t, tb, i, 2)
		if left >= prev && i > 0 {
			t.Fatalf("payload budget not shrinking\n%s", tb)
		}
		prev = left
	}
	// 8..32-bit MACs fit a classic frame with payload to spare and verify.
	for i := 0; i < 4; i++ {
		if cell(t, tb, i, 5) != "yes" {
			t.Fatalf("row %d did not verify\n%s", i, tb)
		}
	}
	// 64-bit MAC leaves no payload room in a classic frame.
	lastLeft := cellF(t, tb, 5, 2)
	if lastLeft > 0 {
		t.Fatalf("64-bit MAC claims %v payload bytes\n%s", lastLeft, tb)
	}
	if !strings.Contains(cell(t, tb, 5, 5), "fit") {
		t.Fatalf("64-bit row outcome: %s\n%s", cell(t, tb, 5, 5), tb)
	}
}

func TestA2BoundingThresholdShape(t *testing.T) {
	tb := A2BoundingThreshold(1)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows=%d", len(tb.Rows))
	}
	// Owner accept rate rises (weakly) with budget; attack accepts flip
	// from blocked to UNLOCKS as the budget loosens.
	firstOwner := cellF(t, tb, 0, 1)
	lastOwner := cellF(t, tb, len(tb.Rows)-1, 1)
	if lastOwner < firstOwner {
		t.Fatalf("owner acceptance fell with looser budget\n%s", tb)
	}
	if lastOwner < 0.99 {
		t.Fatalf("1ms slack still rejects the owner\n%s", tb)
	}
	// The tightest budget blocks every relay.
	for col := 2; col <= 4; col++ {
		if cell(t, tb, 0, col) != "blocked" {
			t.Fatalf("tight budget leaks (col %d)\n%s", col, tb)
		}
	}
	// The loosest budget (1ms slack) admits even the 10us relay.
	if cell(t, tb, 4, 2) != "UNLOCKS" {
		t.Fatalf("loose budget still blocks the relay — sweep has no crossover\n%s", tb)
	}
	// Crossover exists: some budget blocks the 10us relay but admits the
	// zero-latency one nowhere tighter — i.e., columns flip at different
	// rows, showing the tuning space.
	flips := 0
	for col := 2; col <= 4; col++ {
		for row := 1; row < len(tb.Rows); row++ {
			if cell(t, tb, row-1, col) == "blocked" && cell(t, tb, row, col) == "UNLOCKS" {
				flips++
				break
			}
		}
	}
	if flips == 0 {
		t.Fatalf("no crossover anywhere in the sweep\n%s", tb)
	}
}
