package can

import (
	"autosec/internal/obs"
)

// Instrument attaches the bus to the observability layer. Either argument
// may be nil (tracing and metrics enable independently). Labels are
// interned and instruments created here, once, so the per-frame emission
// in complete stays allocation-free; calling Instrument on a bus that is
// already carrying traffic is safe (events start flowing from the next
// completed frame).
//
// Trace events (subsystem "can"): one span per completed frame, named
// "tx" or "tx-error", covering the wire time, with Str = bus name,
// Arg1 = frame ID, Arg2 = bits on wire.
//
// Metrics (keyed "can/<bus>/..."): frames_ok, frames_errored and
// bits_on_wire probe the bus's existing counters (no double-counting on
// the data path), load probes Load(), and frame_time_us is a histogram of
// per-frame wire times in microseconds.
func (b *Bus) Instrument(tr *obs.Tracer, reg *obs.Registry) {
	if tr != nil {
		b.obsTr = tr
		b.obsSub = tr.Label("can")
		b.obsTx = tr.Label("tx")
		b.obsTxErr = tr.Label("tx-error")
		b.obsBus = tr.Label(b.Name)
	}
	if reg != nil {
		prefix := "can/" + b.Name + "/"
		reg.Probe(prefix+"frames_ok", func() float64 { return float64(b.FramesOK.Value) })
		reg.Probe(prefix+"frames_errored", func() float64 { return float64(b.FramesErrored.Value) })
		reg.Probe(prefix+"bits_on_wire", func() float64 { return float64(b.BitsOnWire) })
		reg.Probe(prefix+"load", b.Load)
		b.obsFrameUS = reg.Histogram(prefix+"frame_time_us", nil)
		b.obsCacheReg, b.obsCacheHist = reg, b.obsFrameUS
	}
}

// ReattachMetrics re-arms the metrics hot path after a ResetToBaseline
// detached it, for the registry this bus last Instrument-ed into. It
// performs no registration: the registry must still hold this bus's
// probe entries (a rewound registry does — see obs.Registry.Rewind).
// Returns false when reg is not the cached registry, in which case the
// caller must run the full Instrument path.
func (b *Bus) ReattachMetrics(reg *obs.Registry) bool {
	if reg == nil || b.obsCacheReg != reg {
		return false
	}
	b.obsFrameUS = b.obsCacheHist
	return true
}
