package she_test

import (
	"fmt"

	"autosec/internal/she"
)

// ExampleCMAC computes the RFC 4493 test-vector MAC.
func ExampleCMAC() {
	key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	mac, _ := she.CMAC(key, nil)
	fmt.Printf("%x\n", mac)
	// Output: bb1d6929e95937287fa37d129b756746
}

// ExampleEngine_LoadKey provisions a key in-field with the M1–M5
// memory-update protocol: the OEM builds the update, the device verifies
// and installs it, and the confirmation proves installation.
func ExampleEngine_LoadKey() {
	var uid she.UID
	uid[0] = 0x42
	engine := she.NewEngine(uid)

	var master, newKey [16]byte
	copy(master[:], "factory-master-k")
	copy(newKey[:], "fresh-ivn-mac-ke")
	engine.ProvisionMasterKey(master)

	req, _ := she.BuildUpdate(uid, she.Key1, she.MasterECUKey, master, newKey, 1,
		she.Flags{KeyUsage: true})
	conf, err := engine.LoadKey(req)
	if err != nil {
		fmt.Println("load failed:", err)
		return
	}
	fmt.Println("installed:", she.VerifyConfirmation(conf, uid, she.Key1, she.MasterECUKey, newKey, 1) == nil)

	// A replay of the same request is rejected by the update counter.
	_, err = engine.LoadKey(req)
	fmt.Println("replay rejected:", err != nil)
	// Output:
	// installed: true
	// replay rejected: true
}
