// Package policy implements a centralized, in-field-upgradeable security
// policy engine — the "flexible security architecture ... that enables
// centralized specification of security requirements" the paper cites as
// the research direction for extensibility ([3, 4, 20] in the paper).
//
// A Policy is a signed, versioned set of typed directives ("gateway rule
// X", "IDS detector Y with threshold Z", "MAC truncation 32 bits",
// "pseudonym rotation 5s"). Subsystems register Appliers per directive
// kind; installing a policy verifies its signature and version, checks
// every directive has an applier, and then applies atomically. This is
// the concrete mechanism behind the paper's "in-field configurability":
// experiments E6 and E12 measure what it buys.
package policy

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Directive is one typed policy statement.
type Directive struct {
	// Kind routes the directive to its applier, e.g. "gateway.rule",
	// "ids.detector", "crypto.mac-bits", "v2x.rotation".
	Kind string
	// Params carries the directive's settings.
	Params map[string]string
}

// Param fetches a parameter with a default.
func (d Directive) Param(key, def string) string {
	if v, ok := d.Params[key]; ok {
		return v
	}
	return def
}

// Policy is a signed, versioned directive set.
type Policy struct {
	Name       string
	Version    uint64
	Directives []Directive

	Sig []byte
}

// canonical is the deterministic signed encoding.
func (p *Policy) canonical() []byte {
	var b bytes.Buffer
	b.WriteString(p.Name)
	b.WriteByte(0)
	binary.Write(&b, binary.BigEndian, p.Version)
	for _, d := range p.Directives {
		b.WriteString(d.Kind)
		b.WriteByte(0)
		keys := make([]string, 0, len(d.Params))
		for k := range d.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte(1)
			b.WriteString(d.Params[k])
			b.WriteByte(2)
		}
		b.WriteByte(3)
	}
	return b.Bytes()
}

// Authority signs policies.
type Authority struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewAuthority creates a policy-signing authority.
func NewAuthority() (*Authority, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Authority{priv: priv, pub: pub}, nil
}

// PublicKey returns the verification key to embed in vehicles.
func (a *Authority) PublicKey() ed25519.PublicKey { return a.pub }

// Sign signs a policy in place.
func (a *Authority) Sign(p *Policy) {
	p.Sig = ed25519.Sign(a.priv, p.canonical())
}

// Applier consumes directives of one kind.
type Applier interface {
	// Kind names the directive kind handled.
	Kind() string
	// Validate checks a directive without side effects.
	Validate(d Directive) error
	// Apply installs the directive.
	Apply(d Directive) error
}

// ApplierFunc adapts functions to Applier.
type ApplierFunc struct {
	K  string
	V  func(Directive) error
	Ap func(Directive) error
}

// Kind implements Applier.
func (f ApplierFunc) Kind() string { return f.K }

// Validate implements Applier.
func (f ApplierFunc) Validate(d Directive) error {
	if f.V == nil {
		return nil
	}
	return f.V(d)
}

// Apply implements Applier.
func (f ApplierFunc) Apply(d Directive) error {
	if f.Ap == nil {
		return nil
	}
	return f.Ap(d)
}

// Engine errors.
var (
	ErrBadSignature = errors.New("policy: signature verification failed")
	ErrRollback     = errors.New("policy: version not newer than installed")
	ErrNoApplier    = errors.New("policy: no applier for directive kind")
	ErrValidation   = errors.New("policy: directive validation failed")
	ErrApply        = errors.New("policy: directive application failed")
	ErrDupApplier   = errors.New("policy: applier kind already registered")
)

// Engine is the vehicle-side policy manager.
type Engine struct {
	trusted  ed25519.PublicKey
	appliers map[string]Applier
	// versions tracks the installed version per policy name.
	versions map[string]uint64
	// History records installed policies in order.
	History []string

	// Pooled-reuse baseline; see MarkBaseline/ResetToBaseline.
	baseSealed   bool
	baseAppliers map[string]bool
	baseHistory  int
}

// MarkBaseline records the engine's registered appliers and install
// history as the reset target for pooled reuse.
func (e *Engine) MarkBaseline() {
	e.baseSealed = true
	e.baseAppliers = make(map[string]bool, len(e.appliers))
	for k := range e.appliers {
		e.baseAppliers[k] = true
	}
	e.baseHistory = len(e.History)
}

// ResetToBaseline forgets every policy installed since MarkBaseline and
// drops appliers registered after it (OTA-added subsystems), so version
// monotonicity restarts from the construction state.
func (e *Engine) ResetToBaseline() {
	if !e.baseSealed {
		panic("policy: ResetToBaseline before MarkBaseline")
	}
	for k := range e.appliers {
		if !e.baseAppliers[k] {
			delete(e.appliers, k)
		}
	}
	for name := range e.versions {
		delete(e.versions, name)
	}
	for i := e.baseHistory; i < len(e.History); i++ {
		e.History[i] = ""
	}
	e.History = e.History[:e.baseHistory]
}

// NewEngine creates an engine trusting the authority key.
func NewEngine(trusted ed25519.PublicKey) *Engine {
	return &Engine{
		trusted:  trusted,
		appliers: make(map[string]Applier),
		versions: make(map[string]uint64),
	}
}

// Register installs an applier. Registering a new applier for a new
// directive kind is itself an extensibility act: it is how a subsystem
// added by OTA update plugs into the policy plane.
func (e *Engine) Register(a Applier) error {
	if _, dup := e.appliers[a.Kind()]; dup {
		return fmt.Errorf("%w: %s", ErrDupApplier, a.Kind())
	}
	e.appliers[a.Kind()] = a
	return nil
}

// Kinds lists registered directive kinds.
func (e *Engine) Kinds() []string {
	out := make([]string, 0, len(e.appliers))
	for k := range e.appliers {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// InstalledVersion reports the installed version of a policy name (0 if
// none).
func (e *Engine) InstalledVersion(name string) uint64 { return e.versions[name] }

// Install verifies and applies a policy atomically: signature, version
// monotonicity, applier coverage and validation all pass before any
// directive takes effect.
func (e *Engine) Install(p *Policy) error {
	if !ed25519.Verify(e.trusted, p.canonical(), p.Sig) {
		return ErrBadSignature
	}
	if p.Version <= e.versions[p.Name] {
		return fmt.Errorf("%w: %s v%d <= v%d", ErrRollback, p.Name, p.Version, e.versions[p.Name])
	}
	// Phase 1: coverage and validation.
	for _, d := range p.Directives {
		a, ok := e.appliers[d.Kind]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoApplier, d.Kind)
		}
		if err := a.Validate(d); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrValidation, d.Kind, err)
		}
	}
	// Phase 2: application.
	for _, d := range p.Directives {
		if err := e.appliers[d.Kind].Apply(d); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrApply, d.Kind, err)
		}
	}
	e.versions[p.Name] = p.Version
	e.History = append(e.History, fmt.Sprintf("%s@v%d", p.Name, p.Version))
	return nil
}
