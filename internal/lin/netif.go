package lin

import (
	"fmt"

	"autosec/internal/netif"
	"autosec/internal/sim"
)

// This file adapts the LIN cluster to the netif transport fabric.

// FrameToNetif fills out with the fabric view of f. The payload aliases
// f.Data (zero-copy).
func FrameToNetif(f *Frame, out *netif.Frame) {
	*out = netif.Frame{
		Medium:   netif.LIN,
		ID:       uint32(f.ID),
		Priority: uint32(f.ID),
		Sender:   f.Sender,
		Payload:  f.Data,
	}
}

// FrameFromNetif converts a fabric frame back to a native LIN frame. The
// payload is aliased, not copied.
func FrameFromNetif(nf *netif.Frame) (Frame, error) {
	if nf.Medium != netif.LIN {
		return Frame{}, fmt.Errorf("lin: cannot convert %s frame", nf.Medium)
	}
	if nf.ID > uint32(MaxFrameID) {
		return Frame{}, fmt.Errorf("%w: %#x", ErrIDRange, nf.ID)
	}
	if len(nf.Payload) == 0 || len(nf.Payload) > 8 {
		return Frame{}, fmt.Errorf("%w: %d", ErrDataLength, len(nf.Payload))
	}
	return Frame{ID: FrameID(nf.ID), Data: nf.Payload, Sender: nf.Sender}, nil
}

// netifMedium adapts a Cluster to netif.Medium.
type netifMedium struct {
	cluster    *Cluster
	tapScratch netif.Frame
}

// Netif returns the fabric view of the cluster: ports transmit sporadic
// master frames and hear every completed transfer, taps are bus observers.
func Netif(c *Cluster) netif.Medium { return &netifMedium{cluster: c} }

func (m *netifMedium) Kind() netif.Kind { return netif.LIN }
func (m *netifMedium) Name() string     { return m.cluster.Name }

func (m *netifMedium) Open(name string) (netif.Port, error) {
	return &netifPort{cluster: m.cluster, name: name}, nil
}

func (m *netifMedium) Tap(fn netif.TapFunc) {
	m.cluster.Observe(func(at sim.Time, f Frame) {
		FrameToNetif(&f, &m.tapScratch)
		// Checksum-rejected transfers never reach observers, so a completed
		// LIN frame is by construction uncorrupted.
		fn(at, &m.tapScratch, false)
	})
}

// netifPort is one fabric attachment on the cluster. LIN has no link-layer
// node identity, so the port filters out its own transmissions by sender
// name to match the no-self-reception semantics of the other media.
type netifPort struct {
	cluster     *Cluster
	name        string
	recvScratch netif.Frame
}

func (p *netifPort) Name() string     { return p.name }
func (p *netifPort) Kind() netif.Kind { return netif.LIN }

func (p *netifPort) Send(f *netif.Frame) error {
	nf, err := FrameFromNetif(f)
	if err != nil {
		return err
	}
	return p.cluster.SendSporadic(p.name, nf.ID, nf.Data)
}

func (p *netifPort) OnReceive(fn netif.RecvFunc) {
	p.cluster.Observe(func(at sim.Time, f Frame) {
		if f.Sender == p.name {
			return
		}
		FrameToNetif(&f, &p.recvScratch)
		fn(at, &p.recvScratch)
	})
}
