package core

import (
	"testing"

	"autosec/internal/can"
	"autosec/internal/gateway"
	"autosec/internal/netif"
	"autosec/internal/sim"
)

// A mixed CAN+Ethernet vehicle builds in one call and routes across the
// medium boundary through the central gateway: tunnel frames from the
// Ethernet telematics domain reach the powertrain CAN bus, and allowed
// powertrain frames are exported onto the backbone encapsulated.
func TestMixedMediumVehicleRoutes(t *testing.T) {
	v, err := NewVehicle(Config{
		VIN:  "MIXED1",
		Seed: 1,
		ExtraDomains: []DomainSpec{
			{Name: "telematics", Kind: netif.Ethernet},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if kind, ok := v.Gateway.DomainKind("telematics"); !ok || kind != netif.Ethernet {
		t.Fatalf("telematics domain kind = %v, %v", kind, ok)
	}
	if v.Switches["telematics"] == nil || v.Media["telematics"] == nil {
		t.Fatal("native switch / fabric medium not exposed")
	}

	v.Gateway.SetRules([]*gateway.Rule{
		{Name: "nav", From: "telematics", IDLo: 0x150, IDHi: 0x15F, To: []string{"powertrain"}, Action: gateway.Allow},
		{Name: "export", From: "powertrain", IDLo: 0x1A0, IDHi: 0x1AF, To: []string{"telematics"}, Action: gateway.Allow},
	})

	// Ethernet -> CAN: a telematics unit tunnels a nav frame.
	var ptSeen []can.ID
	mon := can.NewController("monitor")
	v.Buses[DomainPowertrain].Attach(mon)
	mon.OnReceive(func(_ sim.Time, f *can.Frame, _ *can.Controller) {
		if f.ID == 0x155 { // ignore native powertrain traffic
			ptSeen = append(ptSeen, f.ID)
		}
	})
	nav, err := v.Media["telematics"].Open("nav-unit")
	if err != nil {
		t.Fatal(err)
	}
	inner := netif.Frame{Medium: netif.CAN, ID: 0x155, Priority: 0x155, Payload: []byte{1, 2, 3, 4}}
	var wire netif.Frame
	var buf []byte
	netif.Encapsulate(&wire, &inner, &buf)
	if err := nav.Send(&wire); err != nil {
		t.Fatal(err)
	}

	// CAN -> Ethernet: an allowed powertrain frame is exported tunnelled.
	exported := 0
	sink, err := v.Media["telematics"].Open("sink")
	if err != nil {
		t.Fatal(err)
	}
	sink.OnReceive(func(_ sim.Time, f *netif.Frame) {
		var got netif.Frame
		if netif.IsTunnel(f) && netif.Decapsulate(&got, f) == nil && got.ID == 0x1A0 {
			exported++
		}
	})
	abs := can.NewController("abs")
	v.Buses[DomainPowertrain].Attach(abs)
	if err := abs.Send(can.Frame{ID: 0x1A0, Data: []byte{5, 6, 7, 8}}, nil); err != nil {
		t.Fatal(err)
	}

	if err := v.Kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ptSeen) != 1 || ptSeen[0] != 0x155 {
		t.Fatalf("powertrain saw %v, want [0x155]", ptSeen)
	}
	if exported != 1 {
		t.Fatalf("telematics sink decapsulated %d exported frames, want 1", exported)
	}
	if v.Gateway.Forwarded.Value != 2 {
		t.Fatalf("gateway forwarded %d frames, want 2", v.Gateway.Forwarded.Value)
	}

	// Quarantine isolates the Ethernet domain like any CAN domain.
	if err := v.Gateway.Quarantine("telematics"); err != nil {
		t.Fatal(err)
	}
	if err := nav.Send(&wire); err != nil {
		t.Fatal(err)
	}
	if err := v.Kernel.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ptSeen) != 1 {
		t.Fatalf("quarantined telematics still routed: %v", ptSeen)
	}
}

// Every extra-domain kind builds and attaches.
func TestExtraDomainKinds(t *testing.T) {
	v, err := NewVehicle(Config{
		VIN:  "MIXED2",
		Seed: 1,
		ExtraDomains: []DomainSpec{
			{Name: "body-lin", Kind: netif.LIN},
			{Name: "chassis-fr", Kind: netif.FlexRay},
			{Name: "backbone", Kind: netif.Ethernet},
			{Name: "aux-can", Kind: netif.CAN},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]netif.Kind{
		"body-lin": netif.LIN, "chassis-fr": netif.FlexRay,
		"backbone": netif.Ethernet, "aux-can": netif.CAN,
	} {
		if kind, ok := v.Gateway.DomainKind(name); !ok || kind != want {
			t.Fatalf("domain %s: kind=%v ok=%v, want %v", name, kind, ok, want)
		}
	}
	if v.LINClusters["body-lin"] == nil || v.FlexRayClusters["chassis-fr"] == nil ||
		v.Switches["backbone"] == nil || v.Buses["aux-can"] == nil {
		t.Fatal("native handles not exposed")
	}
	// Duplicate names are rejected.
	if _, err := NewVehicle(Config{VIN: "DUP", Seed: 1,
		ExtraDomains: []DomainSpec{{Name: DomainPowertrain, Kind: netif.CAN}}}); err == nil {
		t.Fatal("duplicate domain name accepted")
	}
}
