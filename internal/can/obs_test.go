package can

import (
	"strings"
	"testing"

	"autosec/internal/obs"
	"autosec/internal/sim"
)

func TestBusInstrumentEmitsSpansAndMetrics(t *testing.T) {
	k := sim.NewKernel(1)
	bus := NewBus(k, "powertrain", 500_000)
	tr := obs.NewTracer(256)
	reg := obs.NewRegistry()
	bus.Instrument(tr, reg)

	tx := NewController("ecu")
	rx := NewController("rx")
	bus.Attach(tx)
	bus.Attach(rx)
	for i := 0; i < 5; i++ {
		if err := tx.Send(Frame{ID: 0x100, Data: []byte{byte(i)}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	var spans int
	for _, e := range tr.Events() {
		if tr.LabelString(e.Sub) != "can" || tr.LabelString(e.Name) != "tx" {
			continue
		}
		spans++
		if e.Kind != obs.Span {
			t.Fatal("tx events must be spans")
		}
		if e.Dur <= 0 {
			t.Fatalf("span duration %v, want > 0", e.Dur)
		}
		if tr.LabelString(e.Str) != "powertrain" || e.Arg1 != 0x100 {
			t.Fatalf("span payload: str=%q arg1=%#x", tr.LabelString(e.Str), e.Arg1)
		}
		if e.At+e.Dur > k.Now() {
			t.Fatal("span must end at or before the current time")
		}
	}
	if spans != 5 {
		t.Fatalf("saw %d tx spans, want 5", spans)
	}

	byKey := map[string]obs.Metric{}
	for _, m := range reg.Snapshot() {
		byKey[m.Key] = m
	}
	if m := byKey["can/powertrain/frames_ok"]; m.Value != 5 {
		t.Fatalf("frames_ok = %v, want 5", m.Value)
	}
	if m := byKey["can/powertrain/frame_time_us/count"]; m.Value != 5 {
		t.Fatalf("frame_time_us/count = %v, want 5", m.Value)
	}
	if m := byKey["can/powertrain/bits_on_wire"]; m.Value <= 0 {
		t.Fatalf("bits_on_wire = %v, want > 0", m.Value)
	}
}

func TestBusInstrumentMarksCorruptedFrames(t *testing.T) {
	k := sim.NewKernel(1)
	bus := NewBus(k, "chassis", 500_000)
	tr := obs.NewTracer(64)
	bus.Instrument(tr, nil)
	hit := false
	bus.TargetedError = func(f *Frame, sender *Controller) bool {
		if !hit {
			hit = true
			return true
		}
		return false
	}
	tx := NewController("victim")
	bus.Attach(tx)
	bus.Attach(NewController("rx"))
	if err := tx.Send(Frame{ID: 0x2A0, Data: []byte{1}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range tr.Events() {
		if tr.LabelString(e.Sub) == "can" {
			names = append(names, tr.LabelString(e.Name))
		}
	}
	// The targeted hit corrupts the first attempt; the retransmission
	// succeeds.
	if len(names) != 2 || names[0] != "tx-error" || names[1] != "tx" {
		t.Fatalf("event names = %v, want [tx-error tx]", names)
	}
}

func TestTraceStringMatchesWriteTrace(t *testing.T) {
	tr := &Trace{Records: []Record{
		{At: 10 * sim.Millisecond, Sender: "engine", Frame: Frame{ID: 0xC0, Data: []byte{0xDE, 0xAD}}},
		{At: 20 * sim.Millisecond, Sender: "atk", Frame: Frame{ID: 0x1FFFFFFF, Extended: true}, Corrupted: true},
	}}
	var b strings.Builder
	if err := WriteTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	if tr.String() != b.String() {
		t.Fatalf("String() diverged from WriteTrace:\n%q\nvs\n%q", tr.String(), b.String())
	}
	// And the rendering round-trips through the parser.
	parsed, err := ParseTrace(strings.NewReader(tr.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Len() != 2 || parsed.Records[1].Corrupted != true {
		t.Fatalf("round-trip lost records: %+v", parsed.Records)
	}
}

func TestTraceEmitObsUnifiesEventSource(t *testing.T) {
	k := sim.NewKernel(1)
	bus := NewBus(k, "body", 500_000)
	tx := NewController("door")
	bus.Attach(tx)
	bus.Attach(NewController("rx"))
	captured := Recorder(bus)
	for i := 0; i < 3; i++ {
		if err := tx.Send(Frame{ID: 0x4B0, Data: []byte{byte(i)}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer(64)
	captured.EmitObs(tr)
	ev := tr.Events()
	if len(ev) != captured.Len() {
		t.Fatalf("obs got %d events for %d records", len(ev), captured.Len())
	}
	for i, e := range ev {
		r := captured.Records[i]
		if e.At != r.At || e.Arg1 != int64(r.Frame.ID) || tr.LabelString(e.Str) != r.Sender {
			t.Fatalf("event %d = %+v does not match record %+v", i, e, r)
		}
		if tr.LabelString(e.Name) != "frame" {
			t.Fatalf("event %d name = %q", i, tr.LabelString(e.Name))
		}
	}

	// A nil tracer is a no-op.
	captured.EmitObs(nil)
}
