// Package ecu models an electronic control unit's processing resources:
// a single-core CPU with a preemptive fixed-priority scheduler running
// periodic control tasks and aperiodic jobs (e.g. per-frame CMAC
// computations), with deadline accounting.
//
// This is the substrate of the paper's real-time/security trade-off
// (Sections 5-6): adding message authentication spends CPU time that
// competes with control deadlines, and experiment E7 measures where
// software crypto breaks the schedule while a SHE accelerator does not.
package ecu

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"autosec/internal/sim"
)

// Task is a periodic workload description.
type Task struct {
	Name     string
	Period   sim.Duration
	WCET     sim.Duration // worst-case execution time, spent in full each job
	Deadline sim.Duration // relative; 0 means deadline = period
	Priority int          // lower value = higher priority

	Releases  sim.Counter
	Completes sim.Counter
	Misses    sim.Counter
	Response  sim.Summary // response times in ms
}

// job is one activation.
type job struct {
	task      *Task
	name      string
	priority  int
	released  sim.Time
	deadline  sim.Time // absolute; Never means none
	remaining sim.Duration
	seq       uint64
	onDone    func(at sim.Time, missed bool)
}

// CPU is a single-core preemptive fixed-priority processor.
type CPU struct {
	Name   string
	kernel *sim.Kernel

	ready      []*job
	running    *job
	runStart   sim.Time
	completion sim.Event
	seq        uint64

	busy      sim.Duration
	startedAt sim.Time

	JobsCompleted sim.Counter
	JobsMissed    sim.Counter
}

// NewCPU creates an idle CPU on the kernel.
func NewCPU(k *sim.Kernel, name string) *CPU {
	return &CPU{Name: name, kernel: k, startedAt: k.Now()}
}

// ResetState rewinds the CPU to its post-NewCPU idle state for pooled
// reuse: ready queue drained, running job dropped, accounting zeroed.
// The kernel must have been Reset first (periodic release events and
// pending completions are gone with the queue; the stale completion
// handle is inert by the kernel's generation discipline).
func (c *CPU) ResetState() {
	for i := range c.ready {
		c.ready[i] = nil
	}
	c.ready = c.ready[:0]
	c.running = nil
	c.runStart = 0
	c.completion = sim.Event{}
	c.seq = 0
	c.busy = 0
	c.startedAt = c.kernel.Now()
	c.JobsCompleted.Value = 0
	c.JobsMissed.Value = 0
}

// Utilization reports the busy fraction of elapsed virtual time.
func (c *CPU) Utilization() float64 {
	elapsed := c.kernel.Now() - c.startedAt
	if elapsed <= 0 {
		return 0
	}
	b := c.busy
	if c.running != nil {
		b += c.kernel.Now() - c.runStart
	}
	return float64(b) / float64(elapsed)
}

// Pending reports queued plus running jobs.
func (c *CPU) Pending() int {
	n := len(c.ready)
	if c.running != nil {
		n++
	}
	return n
}

// Errors.
var ErrBadTask = errors.New("ecu: task needs positive period and WCET")

// AddTask starts releasing a periodic task. Release phase starts at the
// current time.
func (c *CPU) AddTask(t *Task) (stop func(), err error) {
	if t.Period <= 0 || t.WCET <= 0 {
		return nil, fmt.Errorf("%w: %s", ErrBadTask, t.Name)
	}
	rel := t.Deadline
	if rel == 0 {
		rel = t.Period
	}
	return c.kernel.Every(c.kernel.Now(), t.Period, func() {
		t.Releases.Inc()
		c.submit(&job{
			task:      t,
			name:      t.Name,
			priority:  t.Priority,
			released:  c.kernel.Now(),
			deadline:  c.kernel.Now() + rel,
			remaining: t.WCET,
		})
	}), nil
}

// Submit queues a one-shot job. deadline 0 means none. onDone may be nil.
func (c *CPU) Submit(name string, wcet sim.Duration, deadline sim.Duration, priority int, onDone func(at sim.Time, missed bool)) error {
	if wcet <= 0 {
		return fmt.Errorf("%w: job %s", ErrBadTask, name)
	}
	abs := sim.Never
	if deadline > 0 {
		abs = c.kernel.Now() + deadline
	}
	c.submit(&job{
		name:      name,
		priority:  priority,
		released:  c.kernel.Now(),
		deadline:  abs,
		remaining: wcet,
		onDone:    onDone,
	})
	return nil
}

func (c *CPU) submit(j *job) {
	j.seq = c.seq
	c.seq++
	c.ready = append(c.ready, j)
	c.reschedule()
}

// higher reports whether a should run before b.
func higher(a, b *job) bool {
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	if a.released != b.released {
		return a.released < b.released
	}
	return a.seq < b.seq
}

// reschedule enforces that the highest-priority ready job runs.
func (c *CPU) reschedule() {
	if len(c.ready) == 0 {
		return
	}
	sort.SliceStable(c.ready, func(i, j int) bool { return higher(c.ready[i], c.ready[j]) })
	top := c.ready[0]
	if c.running != nil {
		if !higher(top, c.running) {
			return // current job keeps the core
		}
		// Preempt: bank progress and requeue.
		now := c.kernel.Now()
		c.running.remaining -= now - c.runStart
		c.busy += now - c.runStart
		c.kernel.Cancel(c.completion)
		if c.running.remaining > 0 {
			c.ready = append(c.ready, c.running)
			sort.SliceStable(c.ready, func(i, j int) bool { return higher(c.ready[i], c.ready[j]) })
		}
		c.running = nil
	}
	c.dispatch()
}

// dispatch starts the head of the ready queue.
func (c *CPU) dispatch() {
	if c.running != nil || len(c.ready) == 0 {
		return
	}
	j := c.ready[0]
	c.ready = c.ready[1:]
	c.running = j
	c.runStart = c.kernel.Now()
	c.completion = c.kernel.After(j.remaining, func() { c.complete(j) })
}

func (c *CPU) complete(j *job) {
	now := c.kernel.Now()
	c.busy += now - c.runStart
	c.running = nil
	c.completion = sim.Event{}

	missed := j.deadline != sim.Never && now > j.deadline
	c.JobsCompleted.Inc()
	if missed {
		c.JobsMissed.Inc()
	}
	if j.task != nil {
		j.task.Completes.Inc()
		if missed {
			j.task.Misses.Inc()
		}
		j.task.Response.Observe((now - j.released).Millis())
	}
	if j.onDone != nil {
		j.onDone(now, missed)
	}
	c.dispatch()
}

// RateMonotonic assigns priorities by period (shortest period = highest
// priority), the optimal fixed-priority order for implicit deadlines.
func RateMonotonic(tasks []*Task) {
	sorted := append([]*Task(nil), tasks...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Period < sorted[j].Period })
	for i, t := range sorted {
		t.Priority = i
	}
}

// UtilizationBound reports the Liu-Layland schedulability bound for n
// tasks under rate-monotonic scheduling: n(2^(1/n)-1).
func UtilizationBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// TaskSetUtilization sums WCET/Period.
func TaskSetUtilization(tasks []*Task) float64 {
	u := 0.0
	for _, t := range tasks {
		u += float64(t.WCET) / float64(t.Period)
	}
	return u
}
