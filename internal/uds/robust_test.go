package uds

import (
	"testing"
	"testing/quick"
)

// Robustness: the server must survive arbitrary request bytes — a fuzzing
// tester on the diagnostic bus is the cheapest attack there is. Every
// input must produce either a response or silence, never a panic, and
// never an unlocked state.
func TestServerSurvivesArbitraryRequests(t *testing.T) {
	r := newRig(t, WeakXOR{Constant: 0xABCD})
	f := func(req []byte) bool {
		// handle is invoked directly (bypassing ISO-TP) to reach the parser
		// with truly arbitrary bytes.
		r.server.Handle(0, req)
		return r.server.UnlockedLevel() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Flash parsers likewise.
func TestFlashParsersSurviveArbitraryRequests(t *testing.T) {
	r := flashRig(t)
	f := func(a, b, c []byte) bool {
		r.server.requestDownload(append([]byte{SvcRequestDownload}, a...))
		r.server.transferData(append([]byte{SvcTransferData}, b...))
		r.server.requestTransferExit(append([]byte{SvcRequestTransferExit}, c...))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
