package sim

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing named tally.
type Counter struct {
	Name  string
	Value int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Value++ }

// Add adds n to the counter. Negative n panics: counters only go up.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("sim: counter decrement")
	}
	c.Value += n
}

// Summary accumulates scalar observations and reports moments and order
// statistics. It retains all samples; simulations in this repository
// observe at most a few million points per summary.
type Summary struct {
	samples []float64
	sum     float64
	sumSq   float64
	sorted  bool
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.samples = append(s.samples, v)
	s.sum += v
	s.sumSq += v * v
	s.sorted = false
}

// Reserve pre-sizes the sample buffer for n further observations, so a
// scenario that knows its sample count up front (e.g. a bus experiment
// observing one latency per period over a fixed horizon) avoids the
// append-regrowth copies. It never shrinks and never discards samples.
func (s *Summary) Reserve(n int) {
	if n <= 0 || cap(s.samples)-len(s.samples) >= n {
		return
	}
	grown := make([]float64, len(s.samples), len(s.samples)+n)
	copy(grown, s.samples)
	s.samples = grown
}

// N reports the number of samples.
func (s *Summary) N() int { return len(s.samples) }

// Mean reports the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Var reports the population variance, or 0 with fewer than two samples.
func (s *Summary) Var() float64 {
	n := float64(len(s.samples))
	if n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/n - m*m
	if v < 0 { // numerical noise
		return 0
	}
	return v
}

// Stddev reports the population standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min reports the smallest sample, or +Inf with none.
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return math.Inf(1)
	}
	s.sort()
	return s.samples[0]
}

// Max reports the largest sample, or -Inf with none.
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return math.Inf(-1)
	}
	s.sort()
	return s.samples[len(s.samples)-1]
}

// Quantile reports the q-quantile (0 ≤ q ≤ 1) by nearest-rank on the
// sorted samples, or NaN with no samples.
func (s *Summary) Quantile(q float64) float64 {
	if len(s.samples) == 0 {
		return math.NaN()
	}
	s.sort()
	if q <= 0 {
		return s.samples[0]
	}
	if q >= 1 {
		return s.samples[len(s.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(s.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.samples[idx]
}

// sort establishes sorted order once; back-to-back order-statistic reads
// (Min, Max, a run of Quantile calls) share the one sort via the lazy
// flag, and a buffer whose samples arrived already ordered is detected in
// O(n) instead of being re-sorted.
func (s *Summary) sort() {
	if s.sorted {
		return
	}
	if !sort.Float64sAreSorted(s.samples) {
		sort.Float64s(s.samples)
	}
	s.sorted = true
}

// String renders a one-line digest.
func (s *Summary) String() string {
	if len(s.samples) == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g",
		s.N(), s.Mean(), s.Stddev(), s.Min(), s.Quantile(0.5), s.Quantile(0.99), s.Max())
}

// Rate is a windowless event-per-second gauge over virtual time.
type Rate struct {
	Events int64
	Since  Time
}

// PerSecond reports events per virtual second elapsed between Since and now.
func (r Rate) PerSecond(now Time) float64 {
	dt := (now - r.Since).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(r.Events) / dt
}
