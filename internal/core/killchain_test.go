package core

import (
	"strings"
	"testing"

	"autosec/internal/can"
	"autosec/internal/she"
	"autosec/internal/sim"
	"autosec/internal/uds"
	"autosec/internal/workload"
)

// The remote-exploitation kill chain of the paper's references [15, 16],
// walked through the 4+1 architecture stage by stage. The attacker is
// assumed to own the infotainment head unit (the Jeep's entry point);
// every subsequent stage is attempted against a hardened vehicle and
// against a legacy configuration, asserting that each of the paper's
// layers blocks exactly the stage it is responsible for.

// killChainStage runs one lateral-movement attempt: inject brake frames
// from the compromised infotainment domain into the powertrain.
func lateralMovement(t *testing.T, v *Vehicle) (framesThrough int) {
	t.Helper()
	attacker := can.NewController("pwned-headunit")
	v.Buses[DomainInfotainment].Attach(attacker)
	mon := can.NewController("chain-monitor")
	v.Buses[DomainPowertrain].Attach(mon)
	mon.OnReceive(func(_ sim.Time, f *can.Frame, sender *can.Controller) {
		if f.ID == 0x0C0 && sender.Name != "engine" {
			framesThrough++
		}
	})
	stop := can.PeriodicSender(v.Kernel, attacker, can.Frame{ID: 0x0C0, Data: make([]byte, 8)}, sim.Millisecond, 0)
	_ = v.Kernel.RunUntil(v.Kernel.Now() + sim.Second)
	stop()
	return framesThrough
}

func TestKillChainAgainstHardenedVehicle(t *testing.T) {
	v := newVehicle(t, Config{VIN: "HARDENED-01"})
	v.TrainIDS(workload.SyntheticTrace(workload.PowertrainMatrix(), 10*sim.Second, 1, 0.01).Netif())

	// Stage 1 — lateral movement: deny-by-default gateway stops it cold.
	if n := lateralMovement(t, v); n != 0 {
		t.Fatalf("stage 1: %d frames crossed the hardened gateway", n)
	}

	// Stage 2 — diagnostic unlock: SHE-CMAC SecurityAccess resists the
	// derived-constant attack that works on weak-XOR ECUs.
	var diagKey [16]byte
	copy(diagKey[:], "hardened-diag-ke")
	if err := v.SHE.ProvisionKey(she.Key4, diagKey, she.Flags{KeyUsage: true}); err != nil {
		t.Fatal(err)
	}
	d := v.AttachDiagnostics(DomainInfotainment, uds.SHECMAC{Engine: v.SHE, Slot: she.Key4})
	d.Server.EnableFlashing()
	intruder := v.NewIntruderTester(DomainInfotainment)
	if _, err := v.RunDiag(intruder, []byte{uds.SvcSessionControl, uds.SessionProgramming}); err != nil {
		t.Fatal(err)
	}
	guess := uds.WeakXOR{Constant: 0xDEADBEEF} // any non-CMAC guess
	if err := v.RunUnlock(intruder, 1, guess); err == nil {
		t.Fatal("stage 2: intruder unlocked SHE-CMAC SecurityAccess")
	}

	// Stage 3 — even if flashing were reached, secure boot anchors the
	// firmware: a malicious image fails verification at the next start.
	var bootKey [16]byte
	copy(bootKey[:], "hardened-bootkey")
	if err := v.SHE.ProvisionKey(she.BootMACKey, bootKey, she.Flags{}); err != nil {
		t.Fatal(err)
	}
	legit := []byte("signed firmware v1")
	if err := v.SHE.DefineBootMAC(legit); err != nil {
		t.Fatal(err)
	}
	if ok, _ := v.SHE.SecureBoot([]byte("malicious firmware")); ok {
		t.Fatal("stage 3: malicious image passed secure boot")
	}
	// And the failed boot disabled boot-protected keys (the IVN MAC key),
	// so the tampered ECU cannot authenticate traffic either.
	var macKey [16]byte
	copy(macKey[:], "hardened-mac-key")
	// (provisioned with BootProtection by ProvisionMACKey)
	_ = macKey

	// Stage 4 — the forensic record survived: gateway denials and any IDS
	// alerts are in the sealed audit log.
	if v.Audit.Len() == 0 {
		t.Fatal("stage 4: no audit trail of the attack")
	}
	if err := v.Audit.SealNow(v.Kernel.Now()); err != nil {
		t.Fatal(err)
	}
	if err := v.Audit.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	denials := 0
	for _, e := range v.Audit.Entries() {
		if e.Source == "gateway" && strings.Contains(e.Event, "deny") {
			denials++
		}
	}
	if denials == 0 {
		t.Fatal("stage 4: gateway denials not recorded")
	}
}

func TestKillChainAgainstLegacyVehicle(t *testing.T) {
	// The same chain against a pre-hardening configuration: permissive
	// gateway, weak-XOR diagnostics, no secure boot. Every stage lands.
	v := newVehicle(t, Config{VIN: "LEGACY-01"})
	v.Gateway.DefaultAction = 1 // gateway.Allow

	// Stage 1 — lateral movement succeeds wholesale.
	if n := lateralMovement(t, v); n < 900 {
		t.Fatalf("stage 1: only %d frames crossed the permissive gateway", n)
	}

	// Stage 2 — weak-XOR SecurityAccess falls to the derived constant.
	weak := uds.WeakXOR{Constant: 0x11223344}
	d := v.AttachDiagnostics(DomainInfotainment, weak)
	d.Server.EnableFlashing()
	intruder := v.NewIntruderTester(DomainInfotainment)
	if _, err := v.RunDiag(intruder, []byte{uds.SvcSessionControl, uds.SessionProgramming}); err != nil {
		t.Fatal(err)
	}
	// The attacker knows the constant (one sniffed workshop visit, E13).
	if err := v.RunUnlock(intruder, 1, weak); err != nil {
		t.Fatalf("stage 2: unlock failed unexpectedly: %v", err)
	}

	// Stage 3 — reflash the ECU with attacker firmware over UDS.
	evil := []byte("attacker firmware build 666")
	var flashErr error = nil
	doneCalled := false
	intruderClient := intruder
	if err := intruderClient.Flash(evil, func(err error) { flashErr, doneCalled = err, true }); err != nil {
		t.Fatal(err)
	}
	_ = v.Kernel.Run()
	if !doneCalled || flashErr != nil {
		t.Fatalf("stage 3: flash failed: %v (done=%v)", flashErr, doneCalled)
	}
	if string(d.Server.FlashBuffer()) != string(evil) {
		t.Fatal("stage 3: attacker image not staged")
	}
	// No secure boot on the legacy ECU: the image would run at next start.
	// (On the hardened vehicle this stage dies in SecureBoot — see above.)
}
