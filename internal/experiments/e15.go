package experiments

import (
	"fmt"

	"autosec/internal/ieee1609"
	"autosec/internal/sim"
	"autosec/internal/v2x"
)

// E15VerifyScaling quantifies §5's verification-needs driver: "it is
// necessary to verify that the V2X communication remains secure
// regardless of how many vehicles and RSUs are in proximity". The sweep
// loads one receiver with growing neighbourhoods at BSM rate under three
// verification pipelines: FIFO software crypto, software crypto with
// verify-on-demand priority scheduling (nearest senders first), and
// hardware-accelerated crypto. Saturation is inevitable for the software
// pipelines at urban density — the question is *which* messages die, and
// the nearest senders are the ones collision avoidance needs.
func E15VerifyScaling(seed uint64) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "V2X verification pipeline vs neighbourhood density (§5)",
		Claim:   "V2X must remain secure regardless of how many vehicles are in proximity",
		Columns: []string{"vehicles in range", "pipeline", "offered msg/s", "verified/s", "dropped frac", "near drops", "near p99 (ms)"},
	}
	const dur = 5 * sim.Second
	type mode struct {
		name        string
		verifyTime  sim.Duration
		prioritized bool
	}
	modes := []mode{
		{"software-fifo", 2 * sim.Millisecond, false},
		{"software-priority", 2 * sim.Millisecond, true},
		{"accelerated", 200 * sim.Microsecond, false},
	}
	for _, n := range []int{10, 25, 50, 100} {
		for _, md := range modes {
			k := sim.NewKernel(seed)
			root, err := ieee1609.NewRootAuthority("root", []ieee1609.PSID{ieee1609.PSIDBasicSafety}, 0, sim.Hour*1000)
			if err != nil {
				panic(err)
			}
			vm := v2x.VerifyModel{
				VerifyTime:  md.verifyTime,
				QueueLimit:  64,
				Freshness:   sim.Second,
				Prioritized: md.prioritized,
			}
			f := v2x.NewField(k, v2x.Radio{RangeM: 500, LossProb: 0, PropDelayPerM: 4}, vm)
			// Background vehicles along a 500m road carry a nil store: they
			// transmit real signed BSMs but skip receive-side crypto, so
			// the experiment pays ECDSA only at the measured receiver.
			for i := 0; i < n; i++ {
				pool, err := ieee1609.NewPseudonymPool(root, 1, []ieee1609.PSID{ieee1609.PSIDBasicSafety}, 0, sim.Hour*1000, sim.Hour*1000)
				if err != nil {
					panic(err)
				}
				x := float64(i) * 500 / float64(n)
				v := f.AddVehicle(fmt.Sprintf("v%d", i), v2x.Position{X: x, Y: 0}, pool, nil)
				v.StartBeacon(100 * sim.Millisecond)
			}
			// The measured receiver sits at the start of the road: a few
			// senders are near (≤50m), the rest progressively farther.
			rxPool, _ := ieee1609.NewPseudonymPool(root, 1, []ieee1609.PSID{ieee1609.PSIDBasicSafety}, 0, sim.Hour*1000, sim.Hour*1000)
			rx := f.AddVehicle("rx", v2x.Position{X: 0, Y: 5}, rxPool, ieee1609.NewStore(root.Cert))
			_ = k.RunUntil(dur)

			offered := float64(rx.Received.Value) / dur.Seconds()
			verified := float64(rx.VerifiedOK.Value) / dur.Seconds()
			dropFrac := 0.0
			if rx.Received.Value > 0 {
				dropFrac = float64(rx.DroppedQueue.Value) / float64(rx.Received.Value)
			}
			nearP99 := 0.0
			if rx.NearLatency.N() > 0 {
				nearP99 = rx.NearLatency.Quantile(0.99)
			}
			t.AddRow(n, md.name, fmt.Sprintf("%.0f", offered), fmt.Sprintf("%.0f", verified),
				dropFrac, rx.NearDropped.Value, nearP99)
		}
	}
	return t
}
