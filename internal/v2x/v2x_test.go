package v2x

import (
	"math"
	"testing"

	"autosec/internal/ieee1609"
	"autosec/internal/sim"
)

var v2xPSIDs = []ieee1609.PSID{ieee1609.PSIDBasicSafety, ieee1609.PSIDInfrastructry, ieee1609.PSIDCRL}

type testPKI struct {
	root  *ieee1609.Authority
	store func() *ieee1609.Store
}

func newPKI(t *testing.T) *testPKI {
	t.Helper()
	root, err := ieee1609.NewRootAuthority("root", v2xPSIDs, 0, sim.Hour*1000)
	if err != nil {
		t.Fatal(err)
	}
	return &testPKI{
		root:  root,
		store: func() *ieee1609.Store { return ieee1609.NewStore(root.Cert) },
	}
}

func (p *testPKI) vehicle(t *testing.T, f *Field, name string, pos Position, poolSize int, period sim.Duration) *Entity {
	t.Helper()
	pool, err := ieee1609.NewPseudonymPool(p.root, poolSize, []ieee1609.PSID{ieee1609.PSIDBasicSafety}, 0, sim.Hour*1000, period)
	if err != nil {
		t.Fatal(err)
	}
	return f.AddVehicle(name, pos, pool, p.store())
}

func TestBSMEncodeDecode(t *testing.T) {
	b := BSM{Pos: Position{100.5, -20.25}, SpeedMS: 33.3, Heading: 1.57}
	got, err := DecodeBSM(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("round trip: %+v != %+v", got, b)
	}
	if _, err := DecodeBSM(make([]byte, 31)); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestPositionDist(t *testing.T) {
	if d := (Position{0, 0}).Dist(Position{3, 4}); d != 5 {
		t.Fatalf("dist=%v", d)
	}
}

func TestBroadcastWithinRange(t *testing.T) {
	k := sim.NewKernel(1)
	pki := newPKI(t)
	f := NewField(k, Radio{RangeM: 300, LossProb: 0, PropDelayPerM: 4}, DefaultVerifyModel())
	a := pki.vehicle(t, f, "a", Position{0, 0}, 1, sim.Hour)
	b := pki.vehicle(t, f, "b", Position{100, 0}, 1, sim.Hour)
	far := pki.vehicle(t, f, "far", Position{1000, 0}, 1, sim.Hour)

	var bGot []BSM
	b.OnBSM(func(_ sim.Time, _ *ieee1609.Certificate, m BSM) { bGot = append(bGot, m) })
	if err := a.BroadcastBSM(); err != nil {
		t.Fatal(err)
	}
	_ = k.RunUntil(100 * sim.Millisecond)
	if len(bGot) != 1 {
		t.Fatalf("b received %d BSMs", len(bGot))
	}
	if bGot[0].Pos != (Position{0, 0}) {
		t.Fatalf("BSM position %+v", bGot[0].Pos)
	}
	if far.Received.Value != 0 {
		t.Fatal("out-of-range entity received a broadcast")
	}
	if a.Sent.Value != 1 {
		t.Fatalf("sent=%d", a.Sent.Value)
	}
}

func TestRadioLoss(t *testing.T) {
	k := sim.NewKernel(7)
	pki := newPKI(t)
	f := NewField(k, Radio{RangeM: 300, LossProb: 0.5, PropDelayPerM: 4}, DefaultVerifyModel())
	a := pki.vehicle(t, f, "a", Position{0, 0}, 1, sim.Hour)
	b := pki.vehicle(t, f, "b", Position{10, 0}, 1, sim.Hour)
	_ = b
	stop := a.StartBeacon(10 * sim.Millisecond)
	_ = k.RunUntil(10 * sim.Second)
	stop()
	frac := float64(b.Received.Value) / float64(a.Sent.Value)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("received fraction %.3f under 50%% loss", frac)
	}
	if f.RadioLost.Value == 0 {
		t.Fatal("no losses recorded")
	}
}

func TestVerificationPipelineVerifies(t *testing.T) {
	k := sim.NewKernel(1)
	pki := newPKI(t)
	f := NewField(k, Radio{RangeM: 300, LossProb: 0, PropDelayPerM: 4}, DefaultVerifyModel())
	a := pki.vehicle(t, f, "a", Position{0, 0}, 1, sim.Hour)
	b := pki.vehicle(t, f, "b", Position{10, 0}, 1, sim.Hour)
	stopA := a.StartBeacon(100 * sim.Millisecond)
	_ = k.RunUntil(2 * sim.Second)
	stopA()
	if b.VerifiedOK.Value == 0 {
		t.Fatal("no messages verified")
	}
	if b.VerifyFailed.Value != 0 {
		t.Fatalf("verify failures: %d", b.VerifyFailed.Value)
	}
	if b.VerifyLatency.N() == 0 || b.VerifyLatency.Mean() < 2 {
		t.Fatalf("verify latency: %s", b.VerifyLatency.String())
	}
}

func TestVerificationQueueSaturation(t *testing.T) {
	k := sim.NewKernel(1)
	pki := newPKI(t)
	vm := VerifyModel{VerifyTime: 10 * sim.Millisecond, QueueLimit: 4, Freshness: sim.Second}
	f := NewField(k, Radio{RangeM: 1000, LossProb: 0, PropDelayPerM: 4}, vm)
	// 30 senders at 10 Hz = 300 msg/s against a 100 msg/s verify budget.
	for i := 0; i < 30; i++ {
		v := pki.vehicle(t, f, "tx", Position{float64(i), 0}, 1, sim.Hour)
		v.StartBeacon(100 * sim.Millisecond)
	}
	rx := pki.vehicle(t, f, "rx", Position{0, 10}, 1, sim.Hour)
	_ = k.RunUntil(3 * sim.Second)
	if rx.DroppedQueue.Value == 0 {
		t.Fatal("saturated pipeline dropped nothing")
	}
	if rx.VerifiedOK.Value == 0 {
		t.Fatal("saturated pipeline verified nothing")
	}
}

func TestRogueVehicleRejected(t *testing.T) {
	k := sim.NewKernel(1)
	pki := newPKI(t)
	f := NewField(k, Radio{RangeM: 300, LossProb: 0, PropDelayPerM: 4}, DefaultVerifyModel())
	// Rogue signs with credentials from an untrusted root.
	rogueRoot, err := ieee1609.NewRootAuthority("rogue", v2xPSIDs, 0, sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	roguePool, err := ieee1609.NewPseudonymPool(rogueRoot, 1, []ieee1609.PSID{ieee1609.PSIDBasicSafety}, 0, sim.Hour, sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	rogue := f.AddVehicle("rogue", Position{0, 0}, roguePool, pki.store())
	victim := pki.vehicle(t, f, "victim", Position{10, 0}, 1, sim.Hour)
	accepted := 0
	victim.OnBSM(func(sim.Time, *ieee1609.Certificate, BSM) { accepted++ })
	stop := rogue.StartBeacon(100 * sim.Millisecond)
	_ = k.RunUntil(sim.Second)
	stop()
	if accepted != 0 {
		t.Fatalf("victim accepted %d rogue BSMs", accepted)
	}
	if victim.VerifyFailed.Value == 0 {
		t.Fatal("no verification failures recorded")
	}
}

func TestRSUBeacon(t *testing.T) {
	k := sim.NewKernel(1)
	pki := newPKI(t)
	f := NewField(k, Radio{RangeM: 300, LossProb: 0, PropDelayPerM: 4}, DefaultVerifyModel())
	cred, err := pki.root.Issue("rsu-42", []ieee1609.PSID{ieee1609.PSIDInfrastructry}, 0, sim.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	rsu := f.AddRSU("rsu-42", Position{0, 0}, cred, pki.store())
	car := pki.vehicle(t, f, "car", Position{50, 0}, 1, sim.Hour)
	var fromRSU int
	car.OnBSM(func(_ sim.Time, c *ieee1609.Certificate, _ BSM) {
		if c.Subject == "rsu-42" {
			fromRSU++
		}
	})
	stop := rsu.StartBeacon(200 * sim.Millisecond)
	_ = k.RunUntil(sim.Second)
	stop()
	if fromRSU == 0 {
		t.Fatal("car never verified an RSU message")
	}
}

func TestEntityMotion(t *testing.T) {
	k := sim.NewKernel(1)
	pki := newPKI(t)
	f := NewField(k, DefaultRadio(), DefaultVerifyModel())
	v := pki.vehicle(t, f, "v", Position{0, 0}, 1, sim.Hour)
	v.SetVelocity(30, 0) // 30 m/s
	_ = k.RunUntil(10 * sim.Second)
	if math.Abs(v.Pos().X-300) > 3.1 {
		t.Fatalf("position after 10s: %+v", v.Pos())
	}
}

func TestNoCredentialBroadcast(t *testing.T) {
	k := sim.NewKernel(1)
	f := NewField(k, DefaultRadio(), DefaultVerifyModel())
	e := f.AddRSU("bare", Position{}, nil, nil)
	if err := e.BroadcastBSM(); err != ErrNoCredential {
		t.Fatalf("err=%v", err)
	}
}
