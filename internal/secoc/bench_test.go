package secoc

import (
	"testing"
)

func BenchmarkProtect(b *testing.B) {
	s, err := NewSender(Config{DataID: 1, FreshnessBits: 8, MACBits: 32}, KeyMAC(testKey))
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Protect(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtectVerify(b *testing.B) {
	cfg := Config{DataID: 1, FreshnessBits: 8, MACBits: 32}
	s, err := NewSender(cfg, KeyMAC(testKey))
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewReceiver(cfg, KeyMAC(testKey))
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte{1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pdu, err := s.Protect(payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Verify(pdu); err != nil {
			b.Fatal(err)
		}
	}
}
