package zonal

import (
	"testing"

	"autosec/internal/gateway"
	"autosec/internal/netif"
	"autosec/internal/sim"
)

// stubMedium is a do-nothing netif.Medium: it isolates the zonal forward
// path — source-zone rule match, tunnel encapsulation, backbone handoff,
// destination-zone decapsulation and translation — from any real medium's
// transmit cost, which is what the steady-state allocation pin measures.
type stubMedium struct {
	kind  netif.Kind
	ports []*stubPort
}

func (m *stubMedium) Kind() netif.Kind { return m.kind }
func (m *stubMedium) Name() string     { return "stub-" + m.kind.String() }

func (m *stubMedium) Open(name string) (netif.Port, error) {
	p := &stubPort{name: name, kind: m.kind}
	m.ports = append(m.ports, p)
	return p, nil
}

func (m *stubMedium) Tap(netif.TapFunc) {}

type stubPort struct {
	name string
	kind netif.Kind
	m    *linkedMedium
	recv netif.RecvFunc
	sent int
}

func (p *stubPort) Name() string     { return p.name }
func (p *stubPort) Kind() netif.Kind { return p.kind }

func (p *stubPort) Send(f *netif.Frame) error {
	p.sent++
	if p.m != nil {
		p.m.deliver(p, f)
	}
	return nil
}

func (p *stubPort) OnReceive(fn netif.RecvFunc) { p.recv = fn }

// linkedMedium is a stub Ethernet backbone that hands every sent frame to
// all other ports synchronously — the broadcast flood a real switch
// performs, minus its store-and-forward cost, so the measurement isolates
// the two gateways' own work.
type linkedMedium struct {
	ports []*stubPort
}

func (m *linkedMedium) Kind() netif.Kind { return netif.Ethernet }
func (m *linkedMedium) Name() string     { return "stub-backbone" }

func (m *linkedMedium) Open(name string) (netif.Port, error) {
	p := &stubPort{name: name, kind: netif.Ethernet, m: m}
	m.ports = append(m.ports, p)
	return p, nil
}

func (m *linkedMedium) Tap(netif.TapFunc) {}

func (m *linkedMedium) deliver(from *stubPort, f *netif.Frame) {
	for _, p := range m.ports {
		if p != from && p.recv != nil {
			p.recv(0, f)
		}
	}
}

// zonalRig builds two zones over a linked stub backbone, each with one
// stub CAN domain, and an allow-everything cross-zone rule set.
func zonalRig(t testing.TB) (aIn, bIn, aLocal, bLocal *stubPort) {
	t.Helper()
	k := sim.NewKernel(1)
	f := New(k, &linkedMedium{})
	za, err := f.AddZone("a")
	if err != nil {
		t.Fatal(err)
	}
	zb, err := f.AddZone("b")
	if err != nil {
		t.Fatal(err)
	}
	aM := &stubMedium{kind: netif.CAN}
	bM := &stubMedium{kind: netif.CAN}
	if err := za.AttachDomain("pt", aM); err != nil {
		t.Fatal(err)
	}
	if err := zb.AttachDomain("body", bM); err != nil {
		t.Fatal(err)
	}
	f.SetRules([]*gateway.Rule{
		{Name: "pt-to-body", From: "pt", To: []string{"body"}, IDLo: 0, IDHi: 0x7FF, Action: gateway.Allow},
		{Name: "body-to-pt", From: "body", To: []string{"pt"}, IDLo: 0, IDHi: 0x7FF, Action: gateway.Allow},
	})
	return aM.ports[0], bM.ports[0], aM.ports[0], bM.ports[0]
}

// TestInterZoneSteadyStateAllocs pins the whole inter-zone chain — source
// zone ingress, rule match, CAN-to-Ethernet tunnel encapsulation,
// backbone handoff, destination zone decapsulation, CAN delivery — at
// zero steady-state allocations per frame, in both directions. Scratch
// buffers grow during warm-up; after that every hop reuses them. CI gates
// on this test.
func TestInterZoneSteadyStateAllocs(t *testing.T) {
	aIn, bIn, _, bLocal := zonalRig(t)

	fa := netif.Frame{Medium: netif.CAN, ID: 0x100, Priority: 0x100, Payload: make([]byte, 8)}
	fb := netif.Frame{Medium: netif.CAN, ID: 0x2A0, Priority: 0x2A0, Payload: make([]byte, 6)}

	for i := 0; i < 16; i++ {
		aIn.recv(0, &fa)
		bIn.recv(0, &fb)
	}
	before := bLocal.sent

	if n := testing.AllocsPerRun(1000, func() { aIn.recv(0, &fa) }); n != 0 {
		t.Fatalf("zone a -> zone b inter-zone forward allocates %.1f/frame, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { bIn.recv(0, &fb) }); n != 0 {
		t.Fatalf("zone b -> zone a inter-zone forward allocates %.1f/frame, want 0", n)
	}
	if bLocal.sent <= before {
		t.Fatal("frames were not delivered across the zone boundary")
	}
}

// BenchmarkZonalInterZone measures the full two-gateway inter-zone chain
// over stub media. CI runs it with the same 0-allocs/op gate as
// BenchmarkGatewayCrossMedium.
func BenchmarkZonalInterZone(b *testing.B) {
	aIn, _, _, _ := zonalRig(b)
	f := netif.Frame{Medium: netif.CAN, ID: 0x100, Priority: 0x100, Payload: make([]byte, 8)}
	aIn.recv(0, &f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aIn.recv(0, &f)
	}
}
