package ids

import (
	"reflect"
	"testing"

	"autosec/internal/netif"
	"autosec/internal/sim"
	"autosec/internal/someip"
)

func TestRegistryRoutingOrder(t *testing.T) {
	e := NewEngineFromSuite(MediumAwareSuite())
	// Global detectors in install order, then the media buckets in Kind
	// order (CAN, LIN, FlexRay, Ethernet) — the deterministic routing
	// and alert merge order.
	want := []string{"frequency", "interval", "spec", "lin-schedule", "fr-slot", "eth-addr", "someip"}
	if got := e.Detectors(); !reflect.DeepEqual(got, want) {
		t.Fatalf("routing order=%v want %v", got, want)
	}
}

func TestRegistryRoutesByMedium(t *testing.T) {
	// A LIN record must never reach the FlexRay bucket and vice versa.
	frd := NewFlexRaySlotDetector()
	frd.Train(traceOf(frRec(0, 9, 0, "steer-ecu", false, 8)))
	lind := linSchedule()
	e := NewEngine(frd, lind)

	// Rogue sender in slot 9 alerts the FlexRay model only.
	as := e.Observe(frRec(sim.Second, 9, 1, "rogue", false, 8))
	if len(as) != 1 || as[0].Detector != "fr-slot" {
		t.Fatalf("alerts=%v", as)
	}
	// An unscheduled LIN ID alerts the LIN model only; the FlexRay
	// detector's slot-9 state is untouched by LIN ID 9.
	as = e.Observe(linRec(sim.Second+1, 9, "rogue", 2))
	if len(as) != 1 || as[0].Detector != "lin-schedule" {
		t.Fatalf("alerts=%v", as)
	}
}

func TestRegistryMergeOrderGlobalThenMedium(t *testing.T) {
	// One record violating both a global spec rule and the medium
	// model: the global alert must come first, install order within
	// each group preserved.
	spec := NewSpecDetector()
	spec.DLC[netif.MakeKey(netif.LIN, 0x10)] = 2
	lind := linSchedule()
	e := NewEngine(spec, lind)

	as := e.Observe(linRec(0, 0x3A, "rogue", 2)) // unknown to spec, unscheduled to LIN
	if len(as) != 2 || as[0].Detector != "spec" || as[1].Detector != "lin-schedule" {
		t.Fatalf("merge order=%v", as)
	}
	// And the engine's aggregate preserves the same order.
	if e.Alerts[0].Detector != "spec" || e.Alerts[1].Detector != "lin-schedule" {
		t.Fatalf("aggregate order=%v", e.Alerts)
	}
}

func TestRegistryCrossMediaAlertOrderDeterministic(t *testing.T) {
	// Same mixed-media stream, two engines: the alert streams must be
	// identical element for element — the property the golden tables
	// lean on.
	stream := func() []netif.Record {
		return []netif.Record{
			frRec(1, 9, 1, "rogue", false, 8),
			linRec(2, 0x3A, "rogue", 2),
			ethRec(3, 0x88B6, mac(0x99), 1, make([]byte, 8)),
			someipRec(4, mac(0x62), &someip.Message{ServiceID: 0x1234, MethodID: 0x21, Type: someip.TypeNotification}),
		}
	}
	run := func() []Alert {
		e := NewEngineFromSuite(MediumAwareSuite())
		e.Train(e21StyleTrace())
		for _, r := range stream() {
			e.Observe(r)
		}
		return e.Alerts
	}
	a, b := run(), b2(run)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("alert streams diverged:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("expected alerts from the violation stream")
	}
}

func b2(f func() []Alert) []Alert { return f() }

// e21StyleTrace is a small mixed-media clean trace covering all four
// media so every suite detector trains.
func e21StyleTrace() *netif.Trace {
	var recs []netif.Record
	for i := 0; i < 8; i++ {
		at := sim.Time(i) * 5 * sim.Millisecond
		recs = append(recs, frRec(at, 9, uint32(i), "steer-ecu", false, 8))
	}
	ids := []uint32{0x10, 0x11, 0x21, 0x30}
	for round := 0; round < 4; round++ {
		for i, id := range ids {
			at := sim.Time(round*40+i*10) * sim.Millisecond
			recs = append(recs, linRec(at, id, "slave", 2))
		}
	}
	for i := 0; i < 8; i++ {
		at := sim.Time(i) * 10 * sim.Millisecond
		recs = append(recs, ethRec(at, 0x88B6, mac(0x51), 1, make([]byte, 8)))
	}
	recs = append(recs,
		someipRec(sim.Second, mac(0x62), &someip.Message{ServiceID: 0x1234, MethodID: 0x01, Type: someip.TypeRequest}),
		someipRec(sim.Second+1, mac(0x62), &someip.Message{ServiceID: 0x1234, MethodID: 0x20, Type: someip.TypeSubscribe}),
		someipRec(sim.Second+2, mac(0x61), &someip.Message{ServiceID: 0x1234, MethodID: 0x20, Type: someip.TypeSubscribeAck}),
	)
	return &netif.Trace{Records: recs}
}

func TestRegistryAddForAndRemove(t *testing.T) {
	e := NewEngine()
	// Scope a statistical detector to one medium: LIN records reach it,
	// FlexRay records do not.
	spec := NewSpecDetector()
	spec.DLC[netif.MakeKey(netif.LIN, 0x10)] = 2
	e.AddFor(netif.LIN, spec)
	if as := e.Observe(frRec(0, 9, 0, "x", false, 8)); len(as) != 0 {
		t.Fatalf("scoped detector saw foreign medium: %v", as)
	}
	if as := e.Observe(linRec(1, 0x3A, "x", 2)); len(as) != 1 {
		t.Fatalf("scoped detector missed its medium: %v", as)
	}
	// Remove finds detectors in media buckets too.
	if !e.Remove("spec") {
		t.Fatal("Remove failed for bucketed detector")
	}
	if e.Remove("spec") {
		t.Fatal("double Remove succeeded")
	}
}

func TestAlertStringNonCAN(t *testing.T) {
	cases := []struct {
		a    Alert
		want string
	}{
		{Alert{At: 5 * sim.Millisecond, Detector: "fr-slot", Medium: netif.FlexRay, ID: 9, Reason: "r"},
			"[5.000ms] fr-slot flexray id=0x9: r"},
		{Alert{At: sim.Second, Detector: "lin-schedule", Medium: netif.LIN, ID: 0x21, Reason: "r"},
			"[1.000000s] lin-schedule lin id=0x21: r"},
		{Alert{At: sim.Microsecond, Detector: "eth-addr", Medium: netif.Ethernet, ID: 0x88B6, Reason: "r"},
			"[1.000us] eth-addr ethernet id=0x88b6: r"},
		// The historical CAN rendering stays byte-identical: no medium tag.
		{Alert{At: sim.Second, Detector: "frequency", Medium: netif.CAN, ID: 0x100, Reason: "r"},
			"[1.000000s] frequency id=0x100: r"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String()=%q want %q", got, c.want)
		}
	}
}

func TestEngineResetToBaselineSuiteParity(t *testing.T) {
	s := MediumAwareSuite()
	e := NewEngineFromSuite(s)
	e.MarkBaseline()
	names := e.Detectors()
	e.Train(e21StyleTrace())
	e.Observe(frRec(sim.Second, 9, 99, "rogue", false, 8))
	if len(e.Alerts) == 0 {
		t.Fatal("setup: expected an alert")
	}
	e.ResetToBaseline(s.Build()...)
	if len(e.Alerts) != 0 || e.Observed() != 0 {
		t.Fatal("reset kept run state")
	}
	if got := e.Detectors(); !reflect.DeepEqual(got, names) {
		t.Fatalf("routing order changed across reset: %v want %v", got, names)
	}
	// Fresh detectors are untrained: spec no longer knows the identifier
	// (global alert, first) and fr-slot sees an unassigned slot (bucket
	// alert, second) — the bucket survived the reset and the merge order
	// held.
	if as := e.Observe(frRec(2*sim.Second, 9, 100, "rogue", false, 8)); len(as) != 2 ||
		as[0].Detector != "spec" || as[1].Detector != "fr-slot" {
		t.Fatalf("post-reset alerts=%v", as)
	}
}

// TestRegistrySteadyStateAllocs is the CI gate on the observe hot
// path: a trained medium-aware engine fed clean mixed-media records
// must not allocate — the property that keeps the IDS viable as a tap
// on every fabric medium at fleet-scale event rates.
func TestRegistrySteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name  string
		suite Suite
	}{
		{"baseline", BaselineSuite()},
		{"medium-aware", MediumAwareSuite()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngineFromSuite(tc.suite)
			e.Train(e21StyleTrace())
			recs := cleanMixedRecords()
			// Warm up: let lastAt/window state settle.
			for i := range recs {
				e.Observe(recs[i])
			}
			var at sim.Time = 10 * sim.Second
			avg := testing.AllocsPerRun(100, func() {
				for i := range recs {
					recs[i].At = at
					e.Observe(recs[i])
					at += 5 * sim.Millisecond
				}
			})
			if avg != 0 {
				t.Fatalf("observe hot path allocates: %.2f allocs per batch", avg)
			}
			if len(e.Alerts) != 0 {
				t.Fatalf("clean records alerted: %v", e.Alerts[:min(len(e.Alerts), 4)])
			}
		})
	}
}

// cleanMixedRecords returns conforming records for all four media plus
// a SOME/IP notification, matching e21StyleTrace's learned models.
func cleanMixedRecords() []netif.Record {
	return []netif.Record{
		frRec(0, 9, 0, "steer-ecu", false, 8),
		linRec(0, 0x10, "slave", 2),
		linRec(0, 0x11, "slave", 2),
		linRec(0, 0x21, "slave", 2),
		linRec(0, 0x30, "slave", 2),
		ethRec(0, 0x88B6, mac(0x51), 1, make([]byte, 8)),
		someipRec(0, mac(0x61), &someip.Message{ServiceID: 0x1234, MethodID: 0x20, Type: someip.TypeNotification}),
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkIDSObserveBaseline(b *testing.B)    { benchObserve(b, BaselineSuite()) }
func BenchmarkIDSObserveMediumAware(b *testing.B) { benchObserve(b, MediumAwareSuite()) }

func benchObserve(b *testing.B, s Suite) {
	e := NewEngineFromSuite(s)
	e.Train(e21StyleTrace())
	recs := cleanMixedRecords()
	for i := range recs {
		e.Observe(recs[i])
	}
	var at sim.Time = 10 * sim.Second
	b.ReportAllocs()
	b.ResetTimer()
	// 5ms per record keeps every per-key interval inside the trained
	// bands, so the benchmark measures the alert-free steady state.
	for i := 0; i < b.N; i++ {
		r := recs[i%len(recs)]
		r.At = at
		e.Observe(r)
		at += 5 * sim.Millisecond
	}
}
