package ids

import (
	"strings"
	"testing"

	"autosec/internal/netif"
	"autosec/internal/sim"
)

// syntheticTrace builds a trace of periodic IDs over the duration. Each
// spec is (id, period, payload generator).
type txSpec struct {
	id      uint32
	period  sim.Duration
	payload func(i int) []byte
}

// canRec builds a CAN-medium record for detector tests.
func canRec(at sim.Time, id uint32, data []byte) netif.Record {
	return netif.Record{At: at, Frame: netif.Frame{Medium: netif.CAN, ID: id, Priority: id, Payload: data}}
}

func makeTrace(dur sim.Duration, specs []txSpec) *netif.Trace {
	tr := &netif.Trace{}
	for _, s := range specs {
		i := 0
		for at := sim.Time(0); at < dur; at += s.period {
			tr.Records = append(tr.Records, canRec(at, s.id, s.payload(i)))
			i++
		}
	}
	// Sort by time (stable merge of the periodic streams).
	for i := 1; i < len(tr.Records); i++ {
		for j := i; j > 0 && tr.Records[j].At < tr.Records[j-1].At; j-- {
			tr.Records[j], tr.Records[j-1] = tr.Records[j-1], tr.Records[j]
		}
	}
	return tr
}

func counterPayload(i int) []byte { return []byte{byte(i), byte(i >> 8), 0x10, 0x20} }
func constPayload(i int) []byte   { return []byte{0x01, 0x02, 0x03, 0x04} }

func cleanSpecs() []txSpec {
	return []txSpec{
		{0x100, 10 * sim.Millisecond, counterPayload},
		{0x200, 20 * sim.Millisecond, constPayload},
		{0x300, 100 * sim.Millisecond, counterPayload},
	}
}

func replay(t *testing.T, d Detector, train, live *netif.Trace) []Alert {
	t.Helper()
	d.Train(train)
	var alerts []Alert
	for i := range live.Records {
		alerts = append(alerts, d.Observe(live.Records[i])...)
	}
	return alerts
}

func TestFrequencyDetectorCleanTrafficQuiet(t *testing.T) {
	train := makeTrace(5*sim.Second, cleanSpecs())
	live := makeTrace(5*sim.Second, cleanSpecs())
	alerts := replay(t, NewFrequencyDetector(), train, live)
	if len(alerts) != 0 {
		t.Fatalf("false positives on clean traffic: %v", alerts[0])
	}
}

func TestFrequencyDetectorFlood(t *testing.T) {
	train := makeTrace(5*sim.Second, cleanSpecs())
	// Live: same plus a flood of 0x100 at 1ms period (10x rate).
	specs := append(cleanSpecs(), txSpec{0x100, sim.Millisecond, constPayload})
	live := makeTrace(5*sim.Second, specs)
	alerts := replay(t, NewFrequencyDetector(), train, live)
	if len(alerts) == 0 {
		t.Fatal("flood not detected")
	}
	for _, a := range alerts {
		if a.ID != 0x100 {
			t.Fatalf("alert on wrong ID: %v", a)
		}
		if !strings.Contains(a.Reason, "rate high") {
			t.Fatalf("unexpected reason: %v", a)
		}
	}
}

func TestFrequencyDetectorSuspension(t *testing.T) {
	train := makeTrace(5*sim.Second, cleanSpecs())
	// Live: 0x200 disappears entirely.
	live := makeTrace(5*sim.Second, []txSpec{
		{0x100, 10 * sim.Millisecond, counterPayload},
		{0x300, 100 * sim.Millisecond, counterPayload},
	})
	alerts := replay(t, NewFrequencyDetector(), train, live)
	found := false
	for _, a := range alerts {
		if a.ID == 0x200 && strings.Contains(a.Reason, "rate low") {
			found = true
		}
	}
	if !found {
		t.Fatalf("suspension of 0x200 not detected (%d alerts)", len(alerts))
	}
}

func TestIntervalDetectorInjection(t *testing.T) {
	train := makeTrace(5*sim.Second, cleanSpecs())
	live := makeTrace(5*sim.Second, cleanSpecs())
	// Inject 20 frames of 0x100 offset 1ms after legitimate ones.
	for i := 0; i < 20; i++ {
		live.Records = append(live.Records,
			canRec(sim.Time(i)*100*sim.Millisecond+sim.Millisecond, 0x100, []byte{0xBA, 0xD0, 0, 0}))
	}
	// Re-sort.
	for i := 1; i < len(live.Records); i++ {
		for j := i; j > 0 && live.Records[j].At < live.Records[j-1].At; j-- {
			live.Records[j], live.Records[j-1] = live.Records[j-1], live.Records[j]
		}
	}
	alerts := replay(t, NewIntervalDetector(), train, live)
	if len(alerts) < 15 {
		t.Fatalf("interval detector caught %d/20 injections", len(alerts))
	}
	clean := replay(t, NewIntervalDetector(), train, makeTrace(5*sim.Second, cleanSpecs()))
	if len(clean) != 0 {
		t.Fatalf("interval false positives: %d", len(clean))
	}
}

func TestIntervalDetectorIgnoresAperiodicIDs(t *testing.T) {
	// An ID with <3 training occurrences is not modelled.
	train := &netif.Trace{Records: []netif.Record{
		canRec(0, 0x50, nil),
		canRec(sim.Second, 0x50, nil),
	}}
	d := NewIntervalDetector()
	d.Train(train)
	a := d.Observe(canRec(2*sim.Second, 0x50, nil))
	b := d.Observe(canRec(2*sim.Second+1, 0x50, nil))
	if len(a)+len(b) != 0 {
		t.Fatal("aperiodic ID raised interval alerts")
	}
}

func TestEntropyDetectorFuzzing(t *testing.T) {
	train := makeTrace(10*sim.Second, cleanSpecs())
	// Live: 0x200's constant payload replaced by random bytes.
	rnd := sim.NewStream(1, "fuzz")
	live := makeTrace(10*sim.Second, []txSpec{
		{0x100, 10 * sim.Millisecond, counterPayload},
		{0x200, 20 * sim.Millisecond, func(i int) []byte {
			b := make([]byte, 4)
			rnd.Bytes(b)
			return b
		}},
		{0x300, 100 * sim.Millisecond, counterPayload},
	})
	alerts := replay(t, NewEntropyDetector(), train, live)
	if len(alerts) == 0 {
		t.Fatal("fuzzing not detected")
	}
	for _, a := range alerts {
		if a.ID != 0x200 {
			t.Fatalf("entropy alert on wrong ID: %v", a)
		}
	}
	clean := replay(t, NewEntropyDetector(), train, makeTrace(10*sim.Second, cleanSpecs()))
	if len(clean) != 0 {
		t.Fatalf("entropy false positives: %d", len(clean))
	}
}

func TestSpecDetectorUnknownIDAndDLC(t *testing.T) {
	train := makeTrace(2*sim.Second, cleanSpecs())
	d := NewSpecDetector()
	d.Train(train)
	// Unknown ID.
	a := d.Observe(canRec(0, 0x666, []byte{1}))
	if len(a) != 1 || !strings.Contains(a[0].Reason, "unknown") {
		t.Fatalf("unknown ID alerts: %v", a)
	}
	// Wrong DLC on a known ID.
	a = d.Observe(canRec(0, 0x100, []byte{1}))
	if len(a) != 1 || !strings.Contains(a[0].Reason, "DLC") {
		t.Fatalf("DLC alerts: %v", a)
	}
	// Conforming frame is quiet.
	a = d.Observe(canRec(0, 0x100, counterPayload(0)))
	if len(a) != 0 {
		t.Fatalf("conforming frame alerted: %v", a)
	}
}

func TestSpecDetectorSignalRanges(t *testing.T) {
	d := NewSpecDetector()
	k := netif.MakeKey(netif.CAN, 0x10)
	d.DLC[k] = 2
	d.Ranges[k] = []SignalRange{{Byte: 0, Lo: 0x00, Hi: 0x64}} // 0..100
	if a := d.Observe(canRec(0, 0x10, []byte{50, 0})); len(a) != 0 {
		t.Fatalf("in-range alerted: %v", a)
	}
	a := d.Observe(canRec(0, 0x10, []byte{200, 0}))
	if len(a) != 1 || !strings.Contains(a[0].Reason, "outside") {
		t.Fatalf("out-of-range: %v", a)
	}
}

func TestSpecDetectorExplicitConfigSkipsTraining(t *testing.T) {
	d := NewSpecDetector()
	d.DLC[netif.MakeKey(netif.CAN, 0x10)] = 2
	d.Train(makeTrace(sim.Second, cleanSpecs()))
	if len(d.DLC) != 1 {
		t.Fatal("explicit config overwritten by training")
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{At: sim.Second, Detector: "spec", ID: 0x1AB, Reason: "x"}
	s := a.String()
	if !strings.Contains(s, "spec") || !strings.Contains(s, "0x1ab") {
		t.Fatalf("String()=%q", s)
	}
}
