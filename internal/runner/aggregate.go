package runner

import (
	"context"
	"fmt"

	"autosec/internal/experiments"
)

// Suite runs one full experiment suite at a seed and returns its tables.
// experiments.All is the canonical suite; cmd/benchreport builds filtered
// ones.
type Suite func(seed uint64) []*experiments.Table

// Replicate runs suite once per seed on at most workers goroutines and
// returns the per-seed table sets in seed order. Each replicate builds
// its own kernels, so per-seed output is bit-for-bit identical to a
// serial run of the same seed.
func Replicate(ctx context.Context, suite Suite, seeds []uint64, workers int) ([][]*experiments.Table, error) {
	results, err := Map(ctx, seeds, workers, func(_ context.Context, seed uint64) ([]*experiments.Table, error) {
		return suite(seed), nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]*experiments.Table, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("runner: seed %d: %w", r.Seed, r.Err)
		}
		out[i] = r.Value
	}
	return out, nil
}

// ReplicateAggregate is Replicate followed by Aggregate: the one-call
// multi-seed evaluation.
func ReplicateAggregate(ctx context.Context, suite Suite, seeds []uint64, workers int) ([]*experiments.Table, error) {
	perSeed, err := Replicate(ctx, suite, seeds, workers)
	if err != nil {
		return nil, err
	}
	return Aggregate(perSeed)
}

// Aggregate merges per-seed runs of the same experiment suite into one
// table per experiment; it delegates to experiments.Aggregate, which
// documents the column-typing fold (constant pass-through, numeric
// mean ± 95% CI expansion, mixed tally). Kept here so existing callers
// keep their import.
func Aggregate(perSeed [][]*experiments.Table) ([]*experiments.Table, error) {
	return experiments.Aggregate(perSeed)
}
