package gateway

import (
	"errors"
	"testing"

	"autosec/internal/can"
	"autosec/internal/netif"
	"autosec/internal/sim"
)

// rig builds two CAN domains joined by a gateway, with one ECU on each.
type rig struct {
	k        *sim.Kernel
	gw       *Gateway
	infoBus  *can.Bus
	ptBus    *can.Bus
	infoECU  *can.Controller
	ptECU    *can.Controller
	ptSeen   []can.ID
	infoSeen []can.ID
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	r := &rig{
		k:       k,
		gw:      New(k, "central"),
		infoBus: can.NewBus(k, "infotainment", 500_000),
		ptBus:   can.NewBus(k, "powertrain", 500_000),
		infoECU: can.NewController("head-unit"),
		ptECU:   can.NewController("engine"),
	}
	r.infoBus.Attach(r.infoECU)
	r.ptBus.Attach(r.ptECU)
	if err := r.gw.AttachDomain("infotainment", can.Netif(r.infoBus)); err != nil {
		t.Fatal(err)
	}
	if err := r.gw.AttachDomain("powertrain", can.Netif(r.ptBus)); err != nil {
		t.Fatal(err)
	}
	r.ptECU.OnReceive(func(_ sim.Time, f *can.Frame, _ *can.Controller) {
		r.ptSeen = append(r.ptSeen, f.ID)
	})
	r.infoECU.OnReceive(func(_ sim.Time, f *can.Frame, _ *can.Controller) {
		r.infoSeen = append(r.infoSeen, f.ID)
	})
	return r
}

func TestDenyByDefault(t *testing.T) {
	r := newRig(t)
	_ = r.infoECU.Send(can.Frame{ID: 0x100}, nil)
	_ = r.k.Run()
	if len(r.ptSeen) != 0 {
		t.Fatalf("default-deny forwarded %v", r.ptSeen)
	}
	if r.gw.Blocked.Value != 1 {
		t.Fatalf("blocked=%d", r.gw.Blocked.Value)
	}
}

func TestAllowRuleForwards(t *testing.T) {
	r := newRig(t)
	r.gw.AddRule(&Rule{Name: "nav-to-pt", From: "infotainment", IDLo: 0x100, IDHi: 0x1FF, To: []string{"powertrain"}, Action: Allow})
	_ = r.infoECU.Send(can.Frame{ID: 0x150, Data: []byte{1}}, nil)
	_ = r.infoECU.Send(can.Frame{ID: 0x250}, nil) // outside range
	_ = r.k.Run()
	if len(r.ptSeen) != 1 || r.ptSeen[0] != 0x150 {
		t.Fatalf("powertrain saw %v", r.ptSeen)
	}
	if r.gw.Forwarded.Value != 1 || r.gw.Blocked.Value != 1 {
		t.Fatalf("forwarded=%d blocked=%d", r.gw.Forwarded.Value, r.gw.Blocked.Value)
	}
}

func TestFirstMatchWins(t *testing.T) {
	r := newRig(t)
	deny := &Rule{Name: "deny-diag", From: "*", IDLo: 0x700, IDHi: 0x7FF, Action: Deny}
	allow := &Rule{Name: "allow-all", From: "*", IDLo: 0, IDHi: uint32(can.MaxStandardID), Action: Allow}
	r.gw.SetRules([]*Rule{deny, allow})
	_ = r.infoECU.Send(can.Frame{ID: 0x7DF}, nil) // OBD broadcast: denied
	_ = r.infoECU.Send(can.Frame{ID: 0x300}, nil) // allowed
	_ = r.k.Run()
	if len(r.ptSeen) != 1 || r.ptSeen[0] != 0x300 {
		t.Fatalf("powertrain saw %v", r.ptSeen)
	}
	if deny.Matched.Value != 1 || allow.Matched.Value != 1 {
		t.Fatalf("matches: deny=%d allow=%d", deny.Matched.Value, allow.Matched.Value)
	}
}

func TestRateLimit(t *testing.T) {
	r := newRig(t)
	rule := &Rule{Name: "limited", From: "infotainment", IDLo: 0, IDHi: uint32(can.MaxStandardID),
		To: []string{"powertrain"}, Action: Allow, RatePerSec: 10, BurstFrames: 5}
	r.gw.AddRule(rule)
	// Fire 50 frames in the first 100ms: bucket of 5 + ~1 refill pass.
	for i := 0; i < 50; i++ {
		i := i
		r.k.At(sim.Time(i)*2*sim.Millisecond, func() {
			_ = r.infoECU.Send(can.Frame{ID: can.ID(0x100 + i)}, nil)
		})
	}
	_ = r.k.Run()
	if len(r.ptSeen) > 8 {
		t.Fatalf("rate limiter passed %d frames", len(r.ptSeen))
	}
	if rule.RateDrops.Value < 40 {
		t.Fatalf("rate drops=%d", rule.RateDrops.Value)
	}
	if r.gw.RateLimited.Value != rule.RateDrops.Value {
		t.Fatal("gateway and rule counters disagree")
	}
}

func TestQuarantineBlocksBothDirections(t *testing.T) {
	r := newRig(t)
	r.gw.AddRule(&Rule{Name: "open", From: "*", IDLo: 0, IDHi: uint32(can.MaxStandardID), Action: Allow})
	if err := r.gw.Quarantine("infotainment"); err != nil {
		t.Fatal(err)
	}
	if !r.gw.Quarantined("infotainment") {
		t.Fatal("quarantine flag not set")
	}
	_ = r.infoECU.Send(can.Frame{ID: 0x100}, nil) // out of quarantined domain
	_ = r.ptECU.Send(can.Frame{ID: 0x200}, nil)   // into quarantined domain
	_ = r.k.Run()
	if len(r.ptSeen) != 0 {
		t.Fatalf("frames escaped quarantine: %v", r.ptSeen)
	}
	if len(r.infoSeen) != 0 {
		t.Fatalf("frames entered quarantine: %v", r.infoSeen)
	}
	if r.gw.QuarDrops.Value != 1 {
		t.Fatalf("quarantine drops=%d", r.gw.QuarDrops.Value)
	}

	// Release restores routing.
	if err := r.gw.Release("infotainment"); err != nil {
		t.Fatal(err)
	}
	_ = r.infoECU.Send(can.Frame{ID: 0x101}, nil)
	_ = r.k.Run()
	if len(r.ptSeen) != 1 {
		t.Fatalf("after release powertrain saw %v", r.ptSeen)
	}
}

func TestQuarantineUnknownDomain(t *testing.T) {
	r := newRig(t)
	if err := r.gw.Quarantine("nope"); !errors.Is(err, ErrUnknownDomain) {
		t.Fatalf("err=%v", err)
	}
	if err := r.gw.Release("nope"); !errors.Is(err, ErrUnknownDomain) {
		t.Fatalf("err=%v", err)
	}
}

func TestDuplicateDomain(t *testing.T) {
	r := newRig(t)
	if err := r.gw.AttachDomain("infotainment", can.Netif(r.infoBus)); !errors.Is(err, ErrDupDomain) {
		t.Fatalf("err=%v", err)
	}
}

func TestAllowToAllOtherDomains(t *testing.T) {
	r := newRig(t)
	// Add a third domain.
	chassisBus := can.NewBus(r.k, "chassis", 500_000)
	chassisECU := can.NewController("abs")
	chassisBus.Attach(chassisECU)
	var chassisSeen []can.ID
	chassisECU.OnReceive(func(_ sim.Time, f *can.Frame, _ *can.Controller) {
		chassisSeen = append(chassisSeen, f.ID)
	})
	if err := r.gw.AttachDomain("chassis", can.Netif(chassisBus)); err != nil {
		t.Fatal(err)
	}
	r.gw.AddRule(&Rule{Name: "bc", From: "powertrain", IDLo: 0x100, IDHi: 0x100, Action: Allow})
	_ = r.ptECU.Send(can.Frame{ID: 0x100}, nil)
	_ = r.k.Run()
	if len(r.infoSeen) != 1 || len(chassisSeen) != 1 {
		t.Fatalf("info=%v chassis=%v", r.infoSeen, chassisSeen)
	}
	if len(r.ptSeen) != 0 {
		t.Fatal("frame echoed into its source domain")
	}
}

func TestObserverVerdicts(t *testing.T) {
	r := newRig(t)
	r.gw.AddRule(&Rule{Name: "nav", From: "infotainment", IDLo: 0x100, IDHi: 0x100, To: []string{"powertrain"}, Action: Allow})
	var verdicts []string
	r.gw.Observe(func(_ sim.Time, _ string, _ *netif.Frame, v string) { verdicts = append(verdicts, v) })
	_ = r.infoECU.Send(can.Frame{ID: 0x100}, nil)
	_ = r.infoECU.Send(can.Frame{ID: 0x500}, nil)
	_ = r.k.Run()
	if len(verdicts) != 2 || verdicts[0] != "allow:nav" || verdicts[1] != "deny:default" {
		t.Fatalf("verdicts=%v", verdicts)
	}
}

func TestDefaultAllowBaseline(t *testing.T) {
	// The "no gateway" baseline for E8: default-allow with no rules.
	r := newRig(t)
	r.gw.DefaultAction = Allow
	_ = r.infoECU.Send(can.Frame{ID: 0x6FF}, nil)
	_ = r.k.Run()
	if len(r.ptSeen) != 1 {
		t.Fatalf("default-allow saw %v", r.ptSeen)
	}
}

func TestActionString(t *testing.T) {
	if Allow.String() != "allow" || Deny.String() != "deny" {
		t.Fatal("Action.String wrong")
	}
}

func TestGatewayLatencyDelaysForwarding(t *testing.T) {
	r := newRig(t)
	r.gw.Latency = 2 * sim.Millisecond
	r.gw.AddRule(&Rule{Name: "open", From: "*", IDLo: 0, IDHi: uint32(can.MaxStandardID), Action: Allow})
	var deliveredAt sim.Time
	r.ptECU.OnReceive(func(at sim.Time, _ *can.Frame, _ *can.Controller) { deliveredAt = at })

	var crossedInfoAt sim.Time
	r.infoBus.Sniff(func(at sim.Time, f *can.Frame, _ *can.Controller, _ bool) { crossedInfoAt = at })
	_ = r.infoECU.Send(can.Frame{ID: 0x100}, nil)
	_ = r.k.Run()
	if deliveredAt == 0 || crossedInfoAt == 0 {
		t.Fatal("frame did not cross")
	}
	// The powertrain delivery lags the infotainment completion by at least
	// the gateway latency (plus the second bus's frame time).
	if deliveredAt-crossedInfoAt < 2*sim.Millisecond {
		t.Fatalf("gateway latency not applied: delta=%v", deliveredAt-crossedInfoAt)
	}
}
