package campaign

import (
	"context"
	"strings"
	"testing"

	"autosec/internal/obs"
)

func baseConfig() Config {
	return Config{
		Fleet:  400,
		Models: 4,
		Seed:   7,
		Strategy: Strategy{
			Name: "conservative", Canary: 16, Growth: 4, AbortThreshold: 0.5,
		},
		RotateAtWave: -1,
	}
}

func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCampaignHappyPath(t *testing.T) {
	cfg := baseConfig()
	res := run(t, cfg)
	if res.Aborted || res.Rotations != 0 {
		t.Fatalf("clean campaign aborted/rotated: %+v", res)
	}
	if got := res.Outcomes[OutcomeUpdated]; got != cfg.Fleet {
		t.Fatalf("updated %d of %d:\n%s", got, cfg.Fleet, res.Render())
	}
	// Waves partition the fleet: canary 16, rings x4.
	if len(res.Waves) == 0 || res.Waves[0].Wave.Size() != 16 {
		t.Fatalf("wave plan: %+v", res.Waves)
	}
	// The backend published 3 generations x 4 models = 12 bundles, 24
	// signatures; epoch never rotated, so exactly 24 cold verifications
	// serve the whole fleet (provisioning + waves).
	if res.Cache.SigVerifies != 24 {
		t.Fatalf("cold signature verifications: %d\n%s", res.Cache.SigVerifies, res.Render())
	}
	if res.Cache.AttestBuilds != 12 {
		t.Fatalf("attestation builds: %d", res.Cache.AttestBuilds)
	}
	// Fleet-scale lookups dwarf the cold work: provisioning (fleet +
	// non-late-joiners) plus two check-ins per vehicle.
	if res.Cache.SigLookups < int64(4*cfg.Fleet) {
		t.Fatalf("sig lookups: %d", res.Cache.SigLookups)
	}
}

func TestCampaignVersionSkewConverges(t *testing.T) {
	cfg := baseConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	late := 0
	for _, st := range e.States() {
		if st.LateJoiner {
			late++
		}
	}
	if late == 0 || late == cfg.Fleet {
		t.Fatalf("late joiner population: %d", late)
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Every vehicle — skewed or not — ends on the campaign firmware.
	for _, st := range e.States() {
		ecu, ok := st.Client.ECU(hwid(st.Model))
		if !ok || ecu.InstalledVersion != versionCurrent {
			t.Fatalf("vehicle %d (late=%v) at version %d", st.Idx, st.LateJoiner, ecu.InstalledVersion)
		}
	}
}

func TestCampaignRollbackBlastsLateJoiners(t *testing.T) {
	cfg := baseConfig()
	cfg.Strategy.AbortThreshold = 0 // measure the full sweep
	cfg.Attack = AttackPlan{Kind: AttackRollback, FromWave: 1}
	res := run(t, cfg)
	// Wave 0 is clean; attacked waves freeze the baseline population and
	// roll the late joiners back to superseded firmware.
	if res.Waves[0].StaleInstalls != 0 || res.Waves[0].Frozen != 0 {
		t.Fatalf("clean canary polluted: %+v", res.Waves[0])
	}
	stale, frozen := 0, 0
	for _, w := range res.Waves[1:] {
		stale += w.StaleInstalls
		frozen += w.Frozen
	}
	if stale == 0 || frozen == 0 {
		t.Fatalf("rollback sweep: stale=%d frozen=%d\n%s", stale, frozen, res.Render())
	}
	if res.Outcomes[OutcomeStaleInstall] != stale || res.Outcomes[OutcomeFrozen] != frozen {
		t.Fatalf("outcome tallies disagree with waves:\n%s", res.Render())
	}
	// Blast radius is exactly the attacked late joiners: stale installs
	// land on vehicles that missed the baseline, nobody else installs
	// anything stale.
	lateAttacked := 0
	for idx := res.Waves[1].Wave.Lo; idx < cfg.Fleet; idx++ {
		if idx%7 == 3 {
			lateAttacked++
		}
	}
	if stale != lateAttacked {
		t.Fatalf("stale installs %d, want the %d attacked late joiners", stale, lateAttacked)
	}
}

func TestCampaignFreezeSilentThenDetected(t *testing.T) {
	cfg := baseConfig()
	cfg.Strategy.AbortThreshold = 0
	cfg.Attack = AttackPlan{Kind: AttackFreeze, FromWave: 1}
	res := run(t, cfg)
	attackedPop := 0
	for _, w := range res.Waves[1:] {
		attackedPop += w.Wave.Size()
		if w.EvilInstalls != 0 || w.StaleInstalls != 0 {
			t.Fatalf("freeze installed something: %+v", w)
		}
	}
	// Every attacked vehicle is frozen and — because the replayed
	// metadata expires inside the wave — detected.
	if res.Outcomes[OutcomeFrozen] != attackedPop {
		t.Fatalf("frozen %d of %d attacked:\n%s", res.Outcomes[OutcomeFrozen], attackedPop, res.Render())
	}
	// Freeze is pure withholding: blast fraction 0 everywhere, so the
	// abort rule never sees it — the detection signal is the expiry.
	if res.Aborted {
		t.Fatal("freeze must not trip the blast-abort rule")
	}
}

func TestCampaignImageKeyContained(t *testing.T) {
	cfg := baseConfig()
	cfg.Attack = AttackPlan{Kind: AttackImageKey, FromWave: 0}
	res := run(t, cfg)
	// A single stolen key installs nothing: the two repositories must
	// agree. Every vehicle rejects the forgery and recovers on the honest
	// re-check.
	if res.Outcomes[OutcomeEvilInstall] != 0 {
		t.Fatalf("single-key forgery installed:\n%s", res.Render())
	}
	if res.Outcomes[OutcomeUpdated] != cfg.Fleet {
		t.Fatalf("fleet did not recover:\n%s", res.Render())
	}
	rejected := 0
	for _, w := range res.Waves {
		rejected += w.AttackRejected
	}
	if rejected != cfg.Fleet {
		t.Fatalf("rejections %d of %d", rejected, cfg.Fleet)
	}
}

func TestCampaignTwoKeyAbortBoundsBlast(t *testing.T) {
	cfg := baseConfig()
	cfg.Attack = AttackPlan{Kind: AttackTwoKey, FromWave: 1}
	res := run(t, cfg)
	// Wave 1 (size 64) is fully compromised; the abort threshold stops
	// the campaign there, so the blast radius is one ring, not the fleet.
	if !res.Aborted || res.AbortWave != 1 {
		t.Fatalf("expected abort at wave 1:\n%s", res.Render())
	}
	if got := res.Outcomes[OutcomeEvilInstall]; got != res.Waves[1].Wave.Size() {
		t.Fatalf("blast radius %d, want %d:\n%s", got, res.Waves[1].Wave.Size(), res.Render())
	}
	if res.Outcomes[OutcomePending] == 0 {
		t.Fatal("abort should leave the undriven fleet pending")
	}
}

func TestCampaignTwoKeyRotationRecovers(t *testing.T) {
	cfg := baseConfig()
	cfg.Attack = AttackPlan{Kind: AttackTwoKey, FromWave: 1}
	cfg.RotateOnBlast = true
	res := run(t, cfg)
	if res.Aborted || res.Rotations != 1 {
		t.Fatalf("expected one rotation, no abort:\n%s", res.Render())
	}
	blast := res.Waves[1].Wave.Size()
	// The compromised ring was hijacked, failed rotation and is the
	// entire failed set; every wave after the rotation installs cleanly
	// under the new epoch because the stolen keys sign a dead trust root.
	if len(res.RotateFailed) != blast || res.Outcomes[OutcomeFailed] != blast {
		t.Fatalf("failed set %d/%d, want %d:\n%s",
			len(res.RotateFailed), res.Outcomes[OutcomeFailed], blast, res.Render())
	}
	for _, w := range res.Waves[2:] {
		if w.EvilInstalls != 0 || w.Updated != w.Wave.Size() {
			t.Fatalf("post-rotation wave compromised: %+v", w)
		}
	}
	if res.Outcomes[OutcomeEvilInstall] != 0 {
		t.Fatalf("evil installs should have been reclassified as failed:\n%s", res.Render())
	}
}

// TestCampaignRotationBetweenCanaryAndRing is the RotateKeys-vs-campaign
// race: the canary wave is compromised end to end (two stolen keys), the
// OEM rotates the trust epoch between canary and ring. Hijacked canary
// vehicles must land in failed deterministically (fleet slice order),
// and the post-rotation waves must verify under the new master without
// re-verifying any completed wave's artifacts.
func TestCampaignRotationBetweenCanaryAndRing(t *testing.T) {
	cfg := baseConfig()
	cfg.Strategy.AbortThreshold = 0
	cfg.Attack = AttackPlan{Kind: AttackTwoKey, FromWave: 0}
	cfg.RotateAtWave = 1 // between canary and ring

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	preWave := e.Cache().Stats()
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	canary := res.Waves[0].Wave.Size()
	if res.Waves[0].EvilInstalls != canary {
		t.Fatalf("canary should be fully compromised: %+v", res.Waves[0])
	}
	if !res.Waves[1].Rotated {
		t.Fatalf("rotation did not land between canary and ring:\n%s", res.Render())
	}
	// Hijacked vehicles fail rotation in fleet slice order: the canary is
	// indices [0,16), so the failed VINs are exactly VIN-000001..VIN-000016
	// in order.
	if len(res.RotateFailed) != canary {
		t.Fatalf("rotate failed %d, want %d", len(res.RotateFailed), canary)
	}
	for i, vin := range res.RotateFailed {
		if want := e.States()[i].VIN; vin != want {
			t.Fatalf("failed[%d] = %s, want %s (slice order)", i, vin, want)
		}
		if e.States()[i].Outcome != OutcomeFailed {
			t.Fatalf("hijacked vehicle %d outcome %v", i, e.States()[i].Outcome)
		}
	}
	// Post-rotation waves all verify under the new master.
	for _, w := range res.Waves[1:] {
		if w.Updated != w.Wave.Size() {
			t.Fatalf("post-rotation wave not clean: %+v", w)
		}
	}
	// "Without re-verifying completed waves": the rotation adds exactly
	// one republished generation plus one re-check of the forged director
	// metadata under the new key (the cache key embeds the key
	// fingerprint, so the old proof cannot be reused) — bounded by
	// published artifacts, not by fleet or wave size. Epoch-0 artifacts:
	// 3 gens + 1 forged bundle set (2 sigs per model each); epoch 1 adds
	// 1 gen plus the forged director's single failed re-verification per
	// model.
	wantVerifies := int64(2*cfg.Models*5 + cfg.Models)
	if res.Cache.SigVerifies != wantVerifies {
		t.Fatalf("cold verifies %d, want %d (artifact-bounded, not fleet-bounded)",
			res.Cache.SigVerifies, wantVerifies)
	}
	if preWave.SigVerifies >= res.Cache.SigVerifies {
		t.Fatal("waves performed no verification at all?")
	}
}

// TestCampaignParInvariance is the campaign determinism gate: the full
// report — waves, outcomes, cache stats and the merged metrics registry
// — must be byte-identical at 1 and 8 workers. CI runs this under -race.
func TestCampaignParInvariance(t *testing.T) {
	render := func(workers int, attack AttackKind) string {
		cfg := baseConfig()
		cfg.Workers = workers
		cfg.Attack = AttackPlan{Kind: attack, FromWave: 1}
		cfg.RotateOnBlast = true
		res := run(t, cfg)
		var sb strings.Builder
		sb.WriteString(res.Render())
		for _, m := range res.Registry.Snapshot() {
			sb.WriteString(m.Key + "=" + obs.FormatValue(m.Value) + "\n")
		}
		return sb.String()
	}
	for _, attack := range []AttackKind{AttackNone, AttackRollback, AttackTwoKey} {
		s1 := render(1, attack)
		s8 := render(8, attack)
		if s1 != s8 {
			t.Fatalf("attack %v: campaign diverges by worker count:\n--- par=1\n%s--- par=8\n%s", attack, s1, s8)
		}
	}
}

// TestCampaignMemoizedSteadyState: after its install, a vehicle's
// re-poll is the memoized no-update path — the client-side counter that
// makes the fleet's steady-state load visible.
func TestCampaignMemoizedSteadyState(t *testing.T) {
	cfg := baseConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, st := range e.States()[:20] {
		if st.Client.UpToDate.Value == 0 {
			t.Fatalf("vehicle %d never exercised the no-update path", st.Idx)
		}
	}
}
