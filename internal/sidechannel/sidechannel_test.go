package sidechannel

import (
	"math"
	"testing"

	"autosec/internal/she"
	"autosec/internal/sim"
)

var testKey = [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}

func TestHW(t *testing.T) {
	cases := map[byte]int{0x00: 0, 0xFF: 8, 0x0F: 4, 0x80: 1}
	for b, want := range cases {
		if got := HW(b); got != want {
			t.Errorf("HW(%#x)=%d, want %d", b, got, want)
		}
	}
}

func TestSBoxSpotValues(t *testing.T) {
	// FIPS-197 known values.
	if sbox[0x00] != 0x63 || sbox[0x53] != 0xed || sbox[0xff] != 0x16 {
		t.Fatal("S-box table corrupt")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if c := pearson(x, x); math.Abs(c-1) > 1e-12 {
		t.Fatalf("self correlation %v", c)
	}
	y := []float64{4, 3, 2, 1}
	if c := pearson(x, y); math.Abs(c+1) > 1e-12 {
		t.Fatalf("anti correlation %v", c)
	}
	if c := pearson(x, []float64{5, 5, 5, 5}); c != 0 {
		t.Fatalf("constant correlation %v", c)
	}
	if c := pearson(nil, nil); c != 0 {
		t.Fatalf("empty correlation %v", c)
	}
}

func TestCPARecoversKeyLowNoise(t *testing.T) {
	rng := sim.NewStream(1, "cpa")
	ts := Acquire(testKey, 300, Config{NoiseSigma: 0.5}, rng)
	got := CPA(ts)
	if got != testKey {
		t.Fatalf("CPA recovered %x, want %x (rate %.2f)", got, testKey, SuccessRate(got, testKey))
	}
}

func TestCPARecoversKeyModerateNoise(t *testing.T) {
	rng := sim.NewStream(2, "cpa2")
	ts := Acquire(testKey, 3000, Config{NoiseSigma: 2}, rng)
	got := CPA(ts)
	if SuccessRate(got, testKey) < 1 {
		t.Fatalf("CPA at sigma=2 with 3000 traces: rate %.2f", SuccessRate(got, testKey))
	}
}

func TestCPAFailsWithTooFewTraces(t *testing.T) {
	rng := sim.NewStream(3, "cpa3")
	ts := Acquire(testKey, 10, Config{NoiseSigma: 3}, rng)
	got := CPA(ts)
	if SuccessRate(got, testKey) > 0.5 {
		t.Fatalf("CPA with 10 noisy traces should not succeed: rate %.2f", SuccessRate(got, testKey))
	}
}

func TestDPARecoversKey(t *testing.T) {
	rng := sim.NewStream(4, "dpa")
	ts := Acquire(testKey, 3000, Config{NoiseSigma: 0.5}, rng)
	got := DPA(ts)
	if SuccessRate(got, testKey) < 0.9 {
		t.Fatalf("DPA rate %.2f", SuccessRate(got, testKey))
	}
}

func TestMaskingDefeatsFirstOrderCPA(t *testing.T) {
	rng := sim.NewStream(5, "mask")
	ts := Acquire(testKey, 3000, Config{NoiseSigma: 0.5, Masked: true}, rng)
	got := CPA(ts)
	rate := SuccessRate(got, testKey)
	// First-order CPA against a masked implementation should do no better
	// than chance (1/256 per byte ≈ 0).
	if rate > 0.2 {
		t.Fatalf("first-order CPA beat masking: rate %.2f", rate)
	}
}

func TestSecondOrderCPABeatsMasking(t *testing.T) {
	rng := sim.NewStream(6, "so")
	ts := Acquire(testKey, 20000, Config{NoiseSigma: 0.3, Masked: true}, rng)
	got := SecondOrderCPA(ts)
	rate := SuccessRate(got, testKey)
	if rate < 0.9 {
		t.Fatalf("second-order CPA rate %.2f, want ≥0.9", rate)
	}
}

func TestSecondOrderFallsBackUnmasked(t *testing.T) {
	rng := sim.NewStream(7, "sofb")
	ts := Acquire(testKey, 300, Config{NoiseSigma: 0.5}, rng)
	g, _ := SecondOrderCPAByte(ts, 0)
	if g != testKey[0] {
		t.Fatalf("fallback guess %#x", g)
	}
}

func TestMaskingCostsTraces(t *testing.T) {
	// The countermeasure's value in one number: at the same noise, the
	// masked device needs strictly more traces (second-order) than the
	// unmasked one (first-order).
	rngU := sim.NewStream(8, "cost-u")
	unmaskedNeeds := TracesToRecover(testKey, Config{NoiseSigma: 0.5}, CPA, 50, 100000, func(n int) *TraceSet {
		return Acquire(testKey, n, Config{NoiseSigma: 0.5}, rngU)
	})
	rngM := sim.NewStream(9, "cost-m")
	maskedNeeds := TracesToRecover(testKey, Config{NoiseSigma: 0.5, Masked: true}, SecondOrderCPA, 50, 100000, func(n int) *TraceSet {
		return Acquire(testKey, n, Config{NoiseSigma: 0.5, Masked: true}, rngM)
	})
	if unmaskedNeeds == 0 {
		t.Fatal("first-order attack never succeeded")
	}
	if maskedNeeds == 0 {
		t.Skip("second-order attack did not converge within limit (acceptable at this noise)")
	}
	if maskedNeeds <= unmaskedNeeds {
		t.Fatalf("masking did not raise trace cost: %d vs %d", maskedNeeds, unmaskedNeeds)
	}
	t.Logf("traces to recover: unmasked=%d masked=%d (%.0fx)", unmaskedNeeds, maskedNeeds, float64(maskedNeeds)/float64(unmaskedNeeds))
}

func TestAcquireFromEngine(t *testing.T) {
	var uid she.UID
	e := she.NewEngine(uid)
	var key [16]byte
	copy(key[:], testKey[:])
	if err := e.ProvisionKey(she.Key2, key, she.Flags{}); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewStream(10, "engine")
	ts, err := AcquireFromEngine(e, she.Key2, 300, Config{NoiseSigma: 0.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := CPA(ts)
	if got != key {
		t.Fatalf("engine CPA recovered %x (rate %.2f)", got, SuccessRate(got, key))
	}
	// The Leak tap was restored.
	if e.Leak != nil {
		t.Fatal("Leak tap left installed")
	}
}

func TestAcquireFromEngineErrors(t *testing.T) {
	var uid she.UID
	e := she.NewEngine(uid)
	rng := sim.NewStream(11, "engine-err")
	if _, err := AcquireFromEngine(e, she.Key5, 10, Config{}, rng); err == nil {
		t.Fatal("empty slot acquisition succeeded")
	}
}

func TestSuccessRate(t *testing.T) {
	a := testKey
	if SuccessRate(a, a) != 1 {
		t.Fatal("self rate != 1")
	}
	b := a
	b[0] ^= 1
	if r := SuccessRate(b, a); r != 15.0/16 {
		t.Fatalf("rate=%v", r)
	}
}
