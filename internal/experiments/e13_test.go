package experiments

import "testing"

func TestE13DiagnosticAccessShape(t *testing.T) {
	tb := E13DiagnosticAccess(1)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows=%d", len(tb.Rows))
	}
	if cell(t, tb, 0, 3) != "yes" {
		t.Fatalf("weak-xor sniff attack failed\n%s", tb)
	}
	if cell(t, tb, 2, 3) != "no" {
		t.Fatalf("she-cmac fell to sniffing\n%s", tb)
	}
}
