package experiments

import (
	"errors"
	"fmt"

	"autosec/internal/core"
	"autosec/internal/keyless"
	"autosec/internal/ota"
	"autosec/internal/sim"
)

// E9Relay quantifies §4.3's PKES relay attack and its distance-bounding
// countermeasure across relay latencies and fob distances.
func E9Relay(seed uint64) *Table {
	_ = seed // the exchange model is deterministic
	t := &Table{
		ID:      "E9",
		Title:   "PKES relay attack vs distance bounding (§4.3, '+1' layer)",
		Claim:   "a keyless fob can be hacked by relaying the signal; countermeasures must measure, not trust, proximity",
		Columns: []string{"scenario", "bounding", "fob dist (m)", "relay latency", "measured RTT", "unlocked"},
	}
	var key [16]byte
	copy(key[:], "e9-shared-key---")

	run := func(scenario string, bounding bool, fobDist float64, relayLat sim.Duration) {
		car := keyless.NewCar(key)
		car.DistanceBounding = bounding
		car.RTTBudget = 2*sim.Millisecond + 200*sim.Nanosecond
		fob := keyless.NewFob(key)
		fob.Pos = keyless.Position{X: fobDist}
		var rtt sim.Duration
		var err error
		if fobDist <= car.LFRangeM {
			rtt, err = car.TryUnlock(fob)
		} else {
			relay := &keyless.Relay{
				PosA:    keyless.Position{X: 1},
				PosB:    keyless.Position{X: fobDist - 0.5},
				Latency: relayLat,
			}
			rtt, err = car.TryRelayUnlock(relay, fob)
		}
		lat := "-"
		if fobDist > car.LFRangeM {
			lat = relayLat.String()
		}
		t.AddRow(scenario, bounding, fmt.Sprintf("%.0f", fobDist), lat, rtt.String(), err == nil)
	}

	run("owner at the door handle", false, 1, 0)
	run("owner at the door handle", true, 1, 0)
	run("relay to fob in house", false, 60, 10*sim.Microsecond)
	run("relay to fob in house", true, 60, 10*sim.Microsecond)
	run("zero-latency relay, 60m", true, 60, 0)
	run("zero-latency relay, 1km", true, 1000, 0)
	return t
}

// E10OTA runs the update attack matrix against the Uptane-style verifier
// and a naive single-signature baseline client.
func E10OTA(seed uint64) *Table {
	_ = seed
	t := &Table{
		ID:      "E10",
		Title:   "OTA attack matrix: Uptane-style client vs naive client (§4.2, §7)",
		Claim:   "if an attacker can access the update keys they can install arbitrary software; metadata discipline contains single-key loss",
		Columns: []string{"attack", "uptane client", "naive client"},
	}
	mkFixture := func() (*ota.Repository, *ota.Repository, *ota.Client, ota.Target, []byte) {
		d, err := ota.NewRepository("director")
		if err != nil {
			panic(err)
		}
		im, err := ota.NewRepository("image")
		if err != nil {
			panic(err)
		}
		c := ota.NewClient("VIN-1", d.PublicKey(), im.PublicKey())
		c.AddECU("brake-mcu", 1)
		payload := []byte("firmware v2 bytes")
		return d, im, c, ota.MakeTarget("brake-fw", 2, "brake-mcu", payload), payload
	}

	// naiveApply models the weak baseline: director signature only, no
	// version counters, no image-repo cross check, no expiry.
	naiveApply := func(d *ota.Repository, b *ota.Bundle) string {
		if b.Director == nil {
			return "rejected (no metadata)"
		}
		// Re-sign check: accept anything carrying a valid director
		// signature over its own content, version ignored.
		probe := ota.NewClient("VIN-1", d.PublicKey(), d.PublicKey())
		probe.AddECU("brake-mcu", 0) // version 0: accepts any version
		bundle := &ota.Bundle{Director: b.Director, Image: b.Director, Payloads: b.Payloads}
		if err := probe.Apply(bundle, 0); err != nil {
			// strip the errors the naive client would not check
			if errors.Is(err, ota.ErrHashMismatch) || errors.Is(err, ota.ErrBadSignature) || errors.Is(err, ota.ErrWrongHW) {
				return "rejected"
			}
			return "INSTALLED (unchecked: " + firstWord(err.Error()) + ")"
		}
		return "INSTALLED"
	}

	type attack struct {
		name  string
		build func() (*ota.Repository, *ota.Bundle, *ota.Client)
	}
	attacks := []attack{
		{"legitimate update", func() (*ota.Repository, *ota.Bundle, *ota.Client) {
			d, im, c, tgt, payload := mkFixture()
			return d, &ota.Bundle{
				Director: d.Sign("VIN-1", []ota.Target{tgt}, sim.Hour),
				Image:    im.Sign("", []ota.Target{tgt}, sim.Hour),
				Payloads: map[string][]byte{"brake-fw": payload},
			}, c
		}},
		{"forged director signature", func() (*ota.Repository, *ota.Bundle, *ota.Client) {
			d, im, c, tgt, payload := mkFixture()
			rogue, _ := ota.NewRepository("director")
			return d, &ota.Bundle{
				Director: rogue.Sign("VIN-1", []ota.Target{tgt}, sim.Hour),
				Image:    im.Sign("", []ota.Target{tgt}, sim.Hour),
				Payloads: map[string][]byte{"brake-fw": payload},
			}, c
		}},
		{"replay of old metadata", func() (*ota.Repository, *ota.Bundle, *ota.Client) {
			d, im, c, tgt, payload := mkFixture()
			old := &ota.Bundle{
				Director: d.Sign("VIN-1", []ota.Target{tgt}, sim.Hour),
				Image:    im.Sign("", []ota.Target{tgt}, sim.Hour),
				Payloads: map[string][]byte{"brake-fw": payload},
			}
			_ = c.Apply(old, sim.Minute) // install once; the replay follows
			return d, old, c
		}},
		{"version downgrade", func() (*ota.Repository, *ota.Bundle, *ota.Client) {
			d, im, c, _, _ := mkFixture()
			oldPayload := []byte("firmware v1 (vulnerable)")
			oldTgt := ota.MakeTarget("brake-fw", 1, "brake-mcu", oldPayload)
			return d, &ota.Bundle{
				Director: d.Sign("VIN-1", []ota.Target{oldTgt}, sim.Hour),
				Image:    im.Sign("", []ota.Target{oldTgt}, sim.Hour),
				Payloads: map[string][]byte{"brake-fw": oldPayload},
			}, c
		}},
		{"stolen director key (mix-and-match)", func() (*ota.Repository, *ota.Bundle, *ota.Client) {
			d, im, c, tgt, _ := mkFixture()
			evil := []byte("malicious firmware")
			evilTgt := ota.MakeTarget("brake-fw", 3, "brake-mcu", evil)
			return d, &ota.Bundle{
				Director: ota.ForgeMetadata(d.StealKey(), "director", "VIN-1", 99, []ota.Target{evilTgt}, sim.Hour),
				Image:    im.Sign("", []ota.Target{tgt}, sim.Hour),
				Payloads: map[string][]byte{"brake-fw": evil},
			}, c
		}},
		{"tampered payload", func() (*ota.Repository, *ota.Bundle, *ota.Client) {
			d, im, c, tgt, payload := mkFixture()
			bad := append([]byte(nil), payload...)
			bad[0] ^= 0xFF
			return d, &ota.Bundle{
				Director: d.Sign("VIN-1", []ota.Target{tgt}, sim.Hour),
				Image:    im.Sign("", []ota.Target{tgt}, sim.Hour),
				Payloads: map[string][]byte{"brake-fw": bad},
			}, c
		}},
		{"wrong-hardware image", func() (*ota.Repository, *ota.Bundle, *ota.Client) {
			d, im, c, _, payload := mkFixture()
			wrong := ota.MakeTarget("brake-fw", 2, "ivi-soc", payload)
			return d, &ota.Bundle{
				Director: d.Sign("VIN-1", []ota.Target{wrong}, sim.Hour),
				Image:    im.Sign("", []ota.Target{wrong}, sim.Hour),
				Payloads: map[string][]byte{"brake-fw": payload},
			}, c
		}},
		{"expired metadata", func() (*ota.Repository, *ota.Bundle, *ota.Client) {
			d, im, c, tgt, payload := mkFixture()
			return d, &ota.Bundle{
				Director: d.Sign("VIN-1", []ota.Target{tgt}, sim.Millisecond),
				Image:    im.Sign("", []ota.Target{tgt}, sim.Millisecond),
				Payloads: map[string][]byte{"brake-fw": payload},
			}, c
		}},
	}
	for _, a := range attacks {
		d, bundle, client := a.build()
		uptane := "installed"
		if err := client.Apply(bundle, sim.Minute); err != nil {
			uptane = "rejected (" + firstWord(err.Error()) + ")"
		}
		t.AddRow(a.name, uptane, naiveApply(d, bundle))
	}
	return t
}

func firstWord(s string) string {
	for i, r := range s {
		if r == ':' || r == ' ' {
			return s[:i]
		}
	}
	return s
}

// E12Lifetime quantifies §5's long-in-field-life driver: over a 15-year
// timeline with crypto deprecations and new attack classes, an extensible
// vehicle upgrades through them while a fixed vehicle accumulates
// exposure-years.
func E12Lifetime(seed uint64) *Table {
	_ = seed
	t := &Table{
		ID:      "E12",
		Title:   "15-year field life: extensible vs fixed architecture (§5)",
		Claim:   "a car's decade-plus field life outlives the ~5-7 year assurance horizon of its security mechanisms",
		Columns: []string{"architecture", "events handled", "events unhandled", "security-current years", "exposed years"},
	}
	type event struct {
		year int
		// layer/name that becomes deprecated at this point in the life.
		layer core.Layer
		name  string
	}
	events := []event{
		{5, core.SecureProcessing, "crypto-suite"},  // assurance horizon
		{7, core.SecureNetworks, "ids"},             // new attack class
		{10, core.SecureInterfaces, "v2x-stack"},    // protocol revision
		{12, core.SecureProcessing, "crypto-suite"}, // second migration
		{14, core.SecureGateway, "gateway-ruleset"}, // new domain topology
	}
	build := func() *core.Architecture {
		a := core.NewArchitecture()
		_ = a.Install(core.SecureProcessing, core.Implementation{Name: "crypto-suite", Version: 1})
		_ = a.Install(core.SecureNetworks, core.Implementation{Name: "ids", Version: 1})
		_ = a.Install(core.SecureInterfaces, core.Implementation{Name: "v2x-stack", Version: 1})
		_ = a.Install(core.SecureGateway, core.Implementation{Name: "gateway-ruleset", Version: 1})
		return a
	}
	for _, extensible := range []bool{true, false} {
		arch := build()
		versions := map[string]int{}
		handled, unhandled := 0, 0
		exposedYears := 0
		const life = 15
		evIdx := 0
		for year := 1; year <= life; year++ {
			for evIdx < len(events) && events[evIdx].year == year {
				ev := events[evIdx]
				evIdx++
				_ = arch.Deprecate(ev.layer, ev.name)
				if extensible {
					versions[ev.name]++
					_ = arch.Install(ev.layer, core.Implementation{Name: ev.name, Version: versions[ev.name] + 1})
					handled++
				} else {
					unhandled++
				}
			}
			if !arch.SecurityCurrent() {
				exposedYears++
			}
		}
		name := "extensible (in-field upgradeable)"
		if !extensible {
			name = "fixed (no upgrade path)"
		}
		t.AddRow(name, handled, unhandled, life-exposedYears, exposedYears)
	}
	return t
}
