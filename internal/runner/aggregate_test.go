package runner

import (
	"context"
	"strings"
	"testing"

	"autosec/internal/experiments"
)

// mkTable builds a small synthetic experiment table for merge tests.
func mkTable(rate string, latency, load float64, verdict string) *experiments.Table {
	t := &experiments.Table{
		ID:      "TX",
		Title:   "synthetic",
		Claim:   "merge test",
		Columns: []string{"rate", "latency", "load", "verdict"},
	}
	t.AddRow(rate, latency, load, verdict)
	return t
}

func TestAggregateColumns(t *testing.T) {
	perSeed := [][]*experiments.Table{
		{mkTable("500", 1.0, 0.25, "yes")},
		{mkTable("500", 2.0, 0.25, "yes")},
		{mkTable("500", 3.0, 0.25, "no")},
	}
	agg, err := Aggregate(perSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(agg) != 1 {
		t.Fatalf("got %d tables, want 1", len(agg))
	}
	a := agg[0]

	// "rate" and "load" are seed-invariant: pass through unchanged.
	// "latency" varies numerically: expands to three columns.
	// "verdict" varies non-numerically: tallied in seed order.
	wantCols := []string{"rate", "latency", "latency sd", "latency range", "load", "verdict"}
	if len(a.Columns) != len(wantCols) {
		t.Fatalf("columns = %v, want %v", a.Columns, wantCols)
	}
	for i, c := range wantCols {
		if a.Columns[i] != c {
			t.Fatalf("columns = %v, want %v", a.Columns, wantCols)
		}
	}
	row := a.Rows[0]
	if row[0] != "500" || row[4] != "0.250" {
		t.Fatalf("invariant cells altered: %v", row)
	}
	// latency: mean 2, sd 1, t(2)=4.303 -> half = 4.303/sqrt(3) = 2.484
	if row[1] != "2 ± 2.484" {
		t.Fatalf("latency CI cell = %q", row[1])
	}
	if row[2] != "1.000" {
		t.Fatalf("latency sd cell = %q", row[2])
	}
	if row[3] != "1..3" {
		t.Fatalf("latency range cell = %q", row[3])
	}
	if row[5] != "yes x2 no x1" {
		t.Fatalf("verdict tally cell = %q", row[5])
	}
	if !strings.Contains(a.Title, "n=3 seeds") {
		t.Fatalf("title missing replicate count: %q", a.Title)
	}
}

// A column that varies with a non-numeric sentinel in some seeds is
// tallied, never averaged; a seed-invariant sentinel row inside a numeric
// column passes through.
func TestAggregateSentinels(t *testing.T) {
	mk := func(traces string, cost float64) *experiments.Table {
		tb := &experiments.Table{ID: "TY", Columns: []string{"traces", "cost"}}
		tb.AddRow(traces, cost)
		tb.AddRow(">8192", 1.0) // sentinel row, invariant across seeds
		return tb
	}
	agg, err := Aggregate([][]*experiments.Table{
		{mk("64", 1.0)}, {mk(">128", 2.0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := agg[0]
	if a.Rows[0][0] != "64 x1 >128 x1" {
		t.Fatalf("mixed cell = %q, want tally", a.Rows[0][0])
	}
	// Row 1 of the numeric "cost" column is invariant: passes through.
	if a.Rows[1][1] != "1.000" || a.Rows[1][2] != "" || a.Rows[1][3] != "" {
		t.Fatalf("invariant numeric row = %v", a.Rows[1])
	}
}

func TestAggregateShapeMismatch(t *testing.T) {
	if _, err := Aggregate([][]*experiments.Table{
		{mkTable("1", 1, 1, "yes")},
		{mkTable("1", 1, 1, "yes"), mkTable("2", 1, 1, "no")},
	}); err == nil {
		t.Fatal("ragged replicate sets should fail")
	}
	bad := mkTable("1", 1, 1, "yes")
	bad.ID = "OTHER"
	if _, err := Aggregate([][]*experiments.Table{
		{mkTable("1", 1, 1, "yes")}, {bad},
	}); err == nil {
		t.Fatal("mismatched experiment IDs should fail")
	}
	if _, err := Aggregate(nil); err == nil {
		t.Fatal("empty replicate set should fail")
	}
}

// ReplicateAggregate over a deterministic suite yields identical output
// at any parallelism.
func TestReplicateAggregateParInvariant(t *testing.T) {
	suite := func(seed uint64) []*experiments.Table {
		return []*experiments.Table{mkTable("500", float64(seed), 0.25, "yes")}
	}
	seeds := Seeds(1, 8)
	serial, err := ReplicateAggregate(context.Background(), suite, seeds, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReplicateAggregate(context.Background(), suite, seeds, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial[0].String() != par[0].String() {
		t.Fatalf("par=1 and par=8 disagree:\n%s\n%s", serial[0], par[0])
	}
}
