// Package doip implements an ISO 13400-flavoured Diagnostics-over-IP
// layer on the automotive Ethernet substrate: vehicle identification,
// routing activation, and diagnostic message transport between a tester's
// logical address and ECU logical addresses — the next-generation
// diagnostics path the paper's Secure Networks layer anticipates
// ("automotive Ethernet ... is supposed to provide more intrusion
// detection capabilities and stricter separation").
//
// Two of that claim's mechanisms are directly testable here: VLAN
// separation decides who can reach the DoIP entity at all, and routing
// activation (optionally authenticated) gates diagnostic traffic even for
// hosts that can.
package doip

import (
	"encoding/binary"
	"errors"
	"fmt"

	"autosec/internal/ethernet"
	"autosec/internal/sim"
)

// EtherTypeDoIP is the (model's) EtherType carrying DoIP payloads.
const EtherTypeDoIP = 0x9000

// Payload types (ISO 13400-2).
const (
	TypeVehicleIDRequest   = 0x0001
	TypeVehicleIDResponse  = 0x0004
	TypeRoutingActivation  = 0x0005
	TypeRoutingActResponse = 0x0006
	TypeDiagMessage        = 0x8001
	TypeDiagAck            = 0x8002
	TypeDiagNack           = 0x8003
)

// Routing activation response codes.
const (
	ActDeniedUnknownSource = 0x00
	ActDeniedAuthRequired  = 0x04
	ActSuccess             = 0x10
)

// Diag NACK codes.
const (
	NackInvalidSource   = 0x02
	NackUnknownTarget   = 0x03
	NackRoutingInactive = 0x06
)

// header is the 8-byte DoIP header.
const headerLen = 8
const protocolVersion = 0x02

func encodeHeader(payloadType uint16, length int) []byte {
	h := make([]byte, headerLen)
	h[0] = protocolVersion
	h[1] = ^byte(protocolVersion)
	binary.BigEndian.PutUint16(h[2:], payloadType)
	binary.BigEndian.PutUint32(h[4:], uint32(length))
	return h
}

// Errors.
var (
	ErrMalformed = errors.New("doip: malformed message")
	ErrVersion   = errors.New("doip: protocol version mismatch")
)

func parseHeader(b []byte) (payloadType uint16, payload []byte, err error) {
	if len(b) < headerLen {
		return 0, nil, ErrMalformed
	}
	if b[0] != protocolVersion || b[1] != ^byte(protocolVersion) {
		return 0, nil, ErrVersion
	}
	pt := binary.BigEndian.Uint16(b[2:])
	n := int(binary.BigEndian.Uint32(b[4:]))
	if len(b) < headerLen+n {
		return 0, nil, ErrMalformed
	}
	return pt, b[headerLen : headerLen+n], nil
}

// Entity is the vehicle-side DoIP node: it answers identification
// requests, arbitrates routing activation, and relays diagnostic messages
// to registered ECU handlers.
type Entity struct {
	VIN  string
	host *ethernet.Host
	// LogicalAddress is the entity's own address.
	LogicalAddress uint16
	// Auth, when non-nil, must approve a routing activation (OEM
	// authentication extension); nil means open activation.
	Auth func(source uint16, key []byte) bool

	// activated maps tester logical address -> activated.
	activated map[uint16]bool
	// ecus maps target logical address -> UDS-ish request handler that
	// returns the response bytes.
	ecus map[uint16]func(req []byte) []byte

	IdentRequests sim.Counter
	Activations   sim.Counter
	ActDenied     sim.Counter
	DiagForwarded sim.Counter
	DiagNacked    sim.Counter
}

// NewEntity binds a DoIP entity to an Ethernet host.
func NewEntity(host *ethernet.Host, vin string, logical uint16) *Entity {
	e := &Entity{
		VIN:            vin,
		host:           host,
		LogicalAddress: logical,
		activated:      make(map[uint16]bool),
		ecus:           make(map[uint16]func([]byte) []byte),
	}
	host.OnReceive(func(at sim.Time, f *ethernet.Frame) {
		if f.EtherType == EtherTypeDoIP {
			e.handle(f)
		}
	})
	return e
}

// RegisterECU exposes an ECU at a logical address. The handler receives
// a UDS request and returns the UDS response.
func (e *Entity) RegisterECU(logical uint16, handler func(req []byte) []byte) {
	e.ecus[logical] = handler
}

// send emits a DoIP message back to a MAC.
func (e *Entity) send(dst ethernet.MAC, payloadType uint16, payload []byte) {
	_ = e.host.Send(ethernet.Frame{
		Dst:       dst,
		EtherType: EtherTypeDoIP,
		Payload:   append(encodeHeader(payloadType, len(payload)), payload...),
	})
}

func (e *Entity) handle(f *ethernet.Frame) {
	pt, payload, err := parseHeader(f.Payload)
	if err != nil {
		return // silently dropped, as UDP-based DoIP does
	}
	switch pt {
	case TypeVehicleIDRequest:
		e.IdentRequests.Inc()
		resp := make([]byte, 0, 19)
		vin := make([]byte, 17)
		copy(vin, e.VIN)
		resp = append(resp, vin...)
		var la [2]byte
		binary.BigEndian.PutUint16(la[:], e.LogicalAddress)
		resp = append(resp, la[:]...)
		e.send(f.Src, TypeVehicleIDResponse, resp)

	case TypeRoutingActivation:
		// Payload: source address (2) + activation type (1) + optional key.
		if len(payload) < 3 {
			return
		}
		source := binary.BigEndian.Uint16(payload)
		key := payload[3:]
		code := byte(ActSuccess)
		if e.Auth != nil && !e.Auth(source, key) {
			code = ActDeniedAuthRequired
			e.ActDenied.Inc()
		} else {
			e.activated[source] = true
			e.Activations.Inc()
		}
		resp := make([]byte, 5)
		binary.BigEndian.PutUint16(resp, source)
		binary.BigEndian.PutUint16(resp[2:], e.LogicalAddress)
		resp[4] = code
		e.send(f.Src, TypeRoutingActResponse, resp)

	case TypeDiagMessage:
		// Payload: source (2) + target (2) + UDS request.
		if len(payload) < 4 {
			return
		}
		source := binary.BigEndian.Uint16(payload)
		target := binary.BigEndian.Uint16(payload[2:])
		req := payload[4:]
		nack := func(code byte) {
			e.DiagNacked.Inc()
			resp := make([]byte, 5)
			binary.BigEndian.PutUint16(resp, target)
			binary.BigEndian.PutUint16(resp[2:], source)
			resp[4] = code
			e.send(f.Src, TypeDiagNack, resp)
		}
		if !e.activated[source] {
			nack(NackRoutingInactive)
			return
		}
		handler, ok := e.ecus[target]
		if !ok {
			nack(NackUnknownTarget)
			return
		}
		e.DiagForwarded.Inc()
		// Positive ack, then the UDS response as a reverse diag message.
		ack := make([]byte, 5)
		binary.BigEndian.PutUint16(ack, target)
		binary.BigEndian.PutUint16(ack[2:], source)
		ack[4] = 0x00
		e.send(f.Src, TypeDiagAck, ack)
		udsResp := handler(req)
		if udsResp == nil {
			return
		}
		out := make([]byte, 4, 4+len(udsResp))
		binary.BigEndian.PutUint16(out, target)
		binary.BigEndian.PutUint16(out[2:], source)
		out = append(out, udsResp...)
		e.send(f.Src, TypeDiagMessage, out)
	}
}

// Tester is the client side: an Ethernet host acting as an external test
// tool (or attacker laptop on the OBD Ethernet port).
type Tester struct {
	host    *ethernet.Host
	Logical uint16

	entityMAC     ethernet.MAC
	entityLogical uint16
	haveEntity    bool

	onIdent []func(vin string, logical uint16)
	onAct   []func(code byte)
	onDiag  []func(resp []byte)
	onNack  []func(code byte)
}

// NewTester binds a tester to an Ethernet host.
func NewTester(host *ethernet.Host, logical uint16) *Tester {
	t := &Tester{host: host, Logical: logical}
	host.OnReceive(func(at sim.Time, f *ethernet.Frame) {
		if f.EtherType != EtherTypeDoIP {
			return
		}
		pt, payload, err := parseHeader(f.Payload)
		if err != nil {
			return
		}
		switch pt {
		case TypeVehicleIDResponse:
			if len(payload) >= 19 {
				t.entityMAC = f.Src
				t.entityLogical = binary.BigEndian.Uint16(payload[17:])
				t.haveEntity = true
				vin := trimVIN(payload[:17])
				for _, fn := range t.onIdent {
					fn(vin, t.entityLogical)
				}
			}
		case TypeRoutingActResponse:
			if len(payload) >= 5 {
				for _, fn := range t.onAct {
					fn(payload[4])
				}
			}
		case TypeDiagMessage:
			if len(payload) >= 4 {
				for _, fn := range t.onDiag {
					fn(append([]byte(nil), payload[4:]...))
				}
			}
		case TypeDiagNack:
			if len(payload) >= 5 {
				for _, fn := range t.onNack {
					fn(payload[4])
				}
			}
		}
	})
	return t
}

func trimVIN(b []byte) string {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	return string(b[:end])
}

// OnIdent registers a vehicle-identification callback.
func (t *Tester) OnIdent(fn func(vin string, logical uint16)) { t.onIdent = append(t.onIdent, fn) }

// OnActivation registers a routing-activation-response callback.
func (t *Tester) OnActivation(fn func(code byte)) { t.onAct = append(t.onAct, fn) }

// OnDiagResponse registers a diagnostic-response callback.
func (t *Tester) OnDiagResponse(fn func(resp []byte)) { t.onDiag = append(t.onDiag, fn) }

// OnNack registers a NACK callback.
func (t *Tester) OnNack(fn func(code byte)) { t.onNack = append(t.onNack, fn) }

// Discover broadcasts a vehicle identification request.
func (t *Tester) Discover() error {
	return t.host.Send(ethernet.Frame{
		Dst:       ethernet.Broadcast,
		EtherType: EtherTypeDoIP,
		Payload:   encodeHeader(TypeVehicleIDRequest, 0),
	})
}

// ErrNoEntity is returned before discovery has found a DoIP entity.
var ErrNoEntity = errors.New("doip: no entity discovered yet")

// Activate requests routing activation, with an optional auth key.
func (t *Tester) Activate(key []byte) error {
	if !t.haveEntity {
		return ErrNoEntity
	}
	payload := make([]byte, 3, 3+len(key))
	binary.BigEndian.PutUint16(payload, t.Logical)
	payload[2] = 0x00 // default activation type
	payload = append(payload, key...)
	return t.host.Send(ethernet.Frame{
		Dst:       t.entityMAC,
		EtherType: EtherTypeDoIP,
		Payload:   append(encodeHeader(TypeRoutingActivation, len(payload)), payload...),
	})
}

// Diag sends a UDS request to a target ECU logical address.
func (t *Tester) Diag(target uint16, req []byte) error {
	if !t.haveEntity {
		return ErrNoEntity
	}
	payload := make([]byte, 4, 4+len(req))
	binary.BigEndian.PutUint16(payload, t.Logical)
	binary.BigEndian.PutUint16(payload[2:], target)
	payload = append(payload, req...)
	return t.host.Send(ethernet.Frame{
		Dst:       t.entityMAC,
		EtherType: EtherTypeDoIP,
		Payload:   append(encodeHeader(TypeDiagMessage, len(payload)), payload...),
	})
}

// String renders a NACK code.
func NackName(code byte) string {
	switch code {
	case NackInvalidSource:
		return "invalid source address"
	case NackUnknownTarget:
		return "unknown target address"
	case NackRoutingInactive:
		return "routing activation missing"
	default:
		return fmt.Sprintf("nack(%#x)", code)
	}
}
