// Package sim provides the discrete-event simulation kernel that underlies
// every timed subsystem in autosec: in-vehicle networks, ECU schedulers,
// the V2X field model, OTA campaigns and drive cycles.
//
// The kernel is deliberately minimal: a virtual clock in nanoseconds, a
// binary-heap event queue with deterministic tie-breaking, and named
// deterministic random streams. Nothing in the library reads the wall
// clock; two runs with the same scenario seed produce identical traces.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time, in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration constants but for virtual time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Never is a sentinel Time later than any reachable simulation instant.
const Never Time = math.MaxInt64

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t >= Second || t <= -Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback. The callback runs exactly once, at its
// deadline, unless cancelled first.
type Event struct {
	when   Time
	seq    uint64 // tie-break: FIFO among equal deadlines
	fn     func()
	index  int // heap index, -1 when not queued
	cancel bool
}

// When reports the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// eventQueue implements heap.Interface ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// ErrHalted is returned by Run variants when Halt stopped the simulation.
var ErrHalted = errors.New("sim: halted")

// Kernel is a discrete-event simulator. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	now     Time
	queue   eventQueue
	seq     uint64
	halted  bool
	stepped uint64
	seed    uint64
	streams map[string]*Stream
}

// NewKernel returns a kernel at time zero whose named random streams are
// derived from seed.
func NewKernel(seed uint64) *Kernel {
	return &Kernel{seed: seed, streams: make(map[string]*Stream)}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Steps reports how many events have been dispatched so far.
func (k *Kernel) Steps() uint64 { return k.stepped }

// Pending reports the number of queued (non-cancelled) events.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.queue {
		if !e.cancel {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it always indicates a model bug.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	e := &Event{when: t, seq: k.seq, fn: fn, index: -1}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Every schedules fn to run every period, starting at start, until the
// returned stop function is called. fn observes the kernel time.
func (k *Kernel) Every(start Time, period Duration, fn func()) (stop func()) {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	stopped := false
	var tick func()
	var ev *Event
	tick = func() {
		if stopped {
			return
		}
		fn()
		ev = k.At(k.now+period, tick)
	}
	ev = k.At(start, tick)
	return func() {
		stopped = true
		if ev != nil {
			k.Cancel(ev)
		}
	}
}

// Cancel prevents a scheduled event from running. Safe to call on events
// that already ran (no-op).
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.cancel {
		return
	}
	e.cancel = true
}

// Halt stops the current Run/RunUntil after the current event returns.
func (k *Kernel) Halt() { k.halted = true }

// step dispatches the next event. Reports false when the queue is empty.
func (k *Kernel) step() bool {
	for len(k.queue) > 0 {
		e := heap.Pop(&k.queue).(*Event)
		if e.cancel {
			continue
		}
		k.now = e.when
		k.stepped++
		e.fn()
		return true
	}
	return false
}

// Run dispatches events until the queue drains or Halt is called.
// It returns ErrHalted if halted, nil otherwise.
func (k *Kernel) Run() error {
	k.halted = false
	for !k.halted {
		if !k.step() {
			return nil
		}
	}
	return ErrHalted
}

// RunUntil dispatches events with deadline ≤ t, then sets the clock to t.
// It returns ErrHalted if halted early, nil otherwise.
func (k *Kernel) RunUntil(t Time) error {
	k.halted = false
	for !k.halted {
		if len(k.queue) == 0 {
			break
		}
		next := k.peek()
		if next == nil {
			break
		}
		if next.when > t {
			break
		}
		k.step()
	}
	if k.halted {
		return ErrHalted
	}
	if t > k.now {
		k.now = t
	}
	return nil
}

// peek returns the earliest non-cancelled event without removing it.
func (k *Kernel) peek() *Event {
	for len(k.queue) > 0 {
		e := k.queue[0]
		if !e.cancel {
			return e
		}
		heap.Pop(&k.queue)
	}
	return nil
}

// NextEventTime reports the deadline of the earliest pending event, or
// Never when the queue is empty.
func (k *Kernel) NextEventTime() Time {
	e := k.peek()
	if e == nil {
		return Never
	}
	return e.when
}

// Stream returns the named deterministic random stream, creating it on
// first use. Distinct names yield statistically independent streams, and
// the same (seed, name) pair always yields the same sequence, so adding a
// new consumer never perturbs existing ones.
func (k *Kernel) Stream(name string) *Stream {
	s, ok := k.streams[name]
	if !ok {
		s = NewStream(k.seed, name)
		k.streams[name] = s
	}
	return s
}
