package core

import (
	"testing"

	"autosec/internal/uds"
)

func TestBackboneDoIPDiagnostics(t *testing.T) {
	weak := uds.WeakXOR{Constant: 0xE77E}
	v := newVehicle(t, Config{})
	b := v.EnableBackbone(weak, nil)

	tester := b.NewDiagTester("tool", 0x0E01, 0x0E00)
	var vin string
	tester.OnIdent(func(got string, _ uint16) { vin = got })
	if err := tester.Discover(); err != nil {
		t.Fatal(err)
	}
	_ = v.Kernel.Run()
	if vin != v.VIN {
		t.Fatalf("discovered VIN %q", vin)
	}

	var act byte = 0xFF
	tester.OnActivation(func(code byte) { act = code })
	_ = tester.Activate(nil)
	_ = v.Kernel.Run()
	if act != 0x10 {
		t.Fatalf("activation=%#x", act)
	}

	// Read the VIN DID over DoIP: full UDS round trip on Ethernet.
	var resp []byte
	tester.OnDiagResponse(func(b []byte) { resp = b })
	_ = tester.Diag(b.ECUAddress, []byte{uds.SvcReadDataByID, 0xF1, 0x90})
	_ = v.Kernel.Run()
	payload, err := uds.ParseResponse(uds.SvcReadDataByID, resp)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload[2:]) != v.VIN {
		t.Fatalf("DID read returned %q", payload[2:])
	}

	// Architecture inventory reflects the backbone.
	if _, err := v.Arch.Get(SecureNetworks, "ethernet-backbone"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Arch.Get(SecureNetworks, "doip-edge"); err != nil {
		t.Fatal(err)
	}
}

func TestBackboneVLANSeparatesAttacker(t *testing.T) {
	v := newVehicle(t, Config{})
	b := v.EnableBackbone(uds.WeakXOR{Constant: 1}, nil)
	attacker := b.NewOffVLANAttacker("pwned-ivi", 0x0E66, 0x0E66)
	heard := false
	attacker.OnIdent(func(string, uint16) { heard = true })
	_ = attacker.Discover()
	_ = v.Kernel.Run()
	if heard || b.Entity.IdentRequests.Value != 0 {
		t.Fatal("IVI-VLAN attacker reached the diagnostics VLAN")
	}
}

func TestBackboneAuthenticatedActivation(t *testing.T) {
	secret := []byte("activation-token")
	v := newVehicle(t, Config{})
	b := v.EnableBackbone(uds.WeakXOR{Constant: 1}, func(_ uint16, key []byte) bool {
		return string(key) == string(secret)
	})
	tester := b.NewDiagTester("tool", 0x0E01, 0x0E00)
	_ = tester.Discover()
	_ = v.Kernel.Run()
	var codes []byte
	tester.OnActivation(func(code byte) { codes = append(codes, code) })
	_ = tester.Activate([]byte("wrong"))
	_ = v.Kernel.Run()
	_ = tester.Activate(secret)
	_ = v.Kernel.Run()
	if len(codes) != 2 || codes[0] == 0x10 || codes[1] != 0x10 {
		t.Fatalf("codes=%v", codes)
	}
}
