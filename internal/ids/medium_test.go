package ids

import (
	"strings"
	"testing"

	"autosec/internal/netif"
	"autosec/internal/sim"
	"autosec/internal/someip"
)

// Record constructors for the non-CAN media, mirroring what the netif
// adapters emit.

func frRec(at sim.Time, slot uint32, cycle uint32, sender string, dynamic bool, n int) netif.Record {
	var flags uint16
	if dynamic {
		flags = netif.FlagDynamic
	}
	return netif.Record{At: at, Frame: netif.Frame{
		Medium: netif.FlexRay, ID: slot, Aux: cycle, Flags: flags,
		Sender: sender, Payload: make([]byte, n),
	}}
}

func linRec(at sim.Time, id uint32, sender string, n int) netif.Record {
	return netif.Record{At: at, Frame: netif.Frame{
		Medium: netif.LIN, ID: id, Sender: sender, Payload: make([]byte, n),
	}}
}

func ethRec(at sim.Time, etherType uint32, src netif.HWAddr, vlan uint32, payload []byte) netif.Record {
	return netif.Record{At: at, Frame: netif.Frame{
		Medium: netif.Ethernet, ID: etherType, Src: src, Aux: vlan, Payload: payload,
	}}
}

func someipRec(at sim.Time, src netif.HWAddr, m *someip.Message) netif.Record {
	return ethRec(at, someip.EtherTypeSOMEIP, src, 1, m.Encode())
}

func traceOf(recs ...netif.Record) *netif.Trace {
	return &netif.Trace{Records: recs}
}

func mac(last byte) netif.HWAddr { return netif.HWAddr{0x02, 0, 0, 0, 0, last} }

// --- FlexRaySlotDetector ---

func TestFlexRaySlotDetectorMasquerade(t *testing.T) {
	d := NewFlexRaySlotDetector()
	d.Train(traceOf(
		frRec(0, 9, 0, "steer-ecu", false, 8),
		frRec(5*sim.Millisecond, 9, 1, "steer-ecu", false, 8),
	))
	// Intruder in an owned slot: one alert per episode.
	if as := d.Observe(frRec(10*sim.Millisecond, 9, 2, "rogue", false, 8)); len(as) != 1 ||
		!strings.Contains(as[0].Reason, `owned by "steer-ecu"`) {
		t.Fatalf("alerts=%v", as)
	}
	if as := d.Observe(frRec(15*sim.Millisecond, 9, 3, "rogue", false, 8)); len(as) != 0 {
		t.Fatalf("episode not deduped: %v", as)
	}
	// Conforming frame from the owner closes the episode; a later
	// violation alerts again.
	if as := d.Observe(frRec(20*sim.Millisecond, 9, 4, "steer-ecu", false, 8)); len(as) != 0 {
		t.Fatalf("owner frame alerted: %v", as)
	}
	if as := d.Observe(frRec(25*sim.Millisecond, 9, 5, "rogue", false, 8)); len(as) != 1 {
		t.Fatalf("episode did not rearm: %v", as)
	}
}

func TestFlexRaySlotDetectorUnassignedAndSegment(t *testing.T) {
	d := NewFlexRaySlotDetector()
	d.Train(traceOf(
		frRec(0, 5, 0, "brake-ecu", false, 8),
		frRec(3*sim.Millisecond, 70, 0, "diag", true, 6),
	))
	// Static frame in a slot nobody owned in training.
	if as := d.Observe(frRec(sim.Second, 44, 0, "x", false, 8)); len(as) != 1 ||
		!strings.Contains(as[0].Reason, "unassigned slot 44") {
		t.Fatalf("alerts=%v", as)
	}
	if as := d.Observe(frRec(sim.Second+1, 44, 0, "x", false, 8)); len(as) != 0 {
		t.Fatalf("unassigned episode not deduped: %v", as)
	}
	// A trained static slot must not move to the dynamic segment;
	// trained dynamic slots may keep using it.
	if as := d.Observe(frRec(2*sim.Second, 5, 1, "brake-ecu", true, 8)); len(as) != 1 ||
		!strings.Contains(as[0].Reason, "dynamic segment") {
		t.Fatalf("alerts=%v", as)
	}
	if as := d.Observe(frRec(2*sim.Second+1, 70, 1, "diag", true, 6)); len(as) != 0 {
		t.Fatalf("legit dynamic alerted: %v", as)
	}
}

func TestFlexRaySlotDetectorCycleRegression(t *testing.T) {
	d := NewFlexRaySlotDetector()
	d.Train(traceOf(frRec(0, 5, 7, "brake-ecu", false, 8)))
	d.Observe(frRec(sim.Millisecond, 5, 8, "brake-ecu", false, 8))
	as := d.Observe(frRec(2*sim.Millisecond, 5, 3, "brake-ecu", false, 8))
	if len(as) != 1 || !strings.Contains(as[0].Reason, "cycle counter regressed") {
		t.Fatalf("alerts=%v", as)
	}
}

func TestFlexRaySlotDetectorAmbiguousOwnerExempt(t *testing.T) {
	d := NewFlexRaySlotDetector()
	d.Train(traceOf(
		frRec(0, 9, 0, "a", false, 8),
		frRec(1, 9, 1, "b", false, 8),
	))
	if as := d.Observe(frRec(2, 9, 2, "c", false, 8)); len(as) != 0 {
		t.Fatalf("ambiguous slot alerted: %v", as)
	}
}

// --- LINScheduleDetector ---

func linSchedule() *LINScheduleDetector {
	d := NewLINScheduleDetector()
	var recs []netif.Record
	ids := []uint32{0x10, 0x11, 0x21, 0x30}
	for round := 0; round < 3; round++ {
		for i, id := range ids {
			at := sim.Time(round*40+i*10) * sim.Millisecond
			recs = append(recs, linRec(at, id, "slave", 2))
		}
	}
	d.Train(traceOf(recs...))
	return d
}

func TestLINScheduleDetectorDeviation(t *testing.T) {
	d := linSchedule()
	d.Observe(linRec(0, 0x10, "slave", 2))
	d.Observe(linRec(10*sim.Millisecond, 0x11, "slave", 2))
	// 0x30 may not follow 0x11.
	as := d.Observe(linRec(12*sim.Millisecond, 0x30, "rogue", 2))
	if len(as) != 1 || !strings.Contains(as[0].Reason, "schedule deviation") {
		t.Fatalf("alerts=%v", as)
	}
	// The pointer did not advance: the legitimate successor of 0x11 is
	// still clean, so one injection yields exactly one alert.
	if as := d.Observe(linRec(20*sim.Millisecond, 0x21, "slave", 2)); len(as) != 0 {
		t.Fatalf("legit successor alerted: %v", as)
	}
}

func TestLINScheduleDetectorUnscheduledID(t *testing.T) {
	d := linSchedule()
	if as := d.Observe(linRec(0, 0x3A, "rogue", 2)); len(as) != 1 ||
		!strings.Contains(as[0].Reason, "unscheduled frame") {
		t.Fatalf("alerts=%v", as)
	}
	if as := d.Observe(linRec(1, 0x3A, "rogue", 2)); len(as) != 0 {
		t.Fatalf("unscheduled episode not deduped: %v", as)
	}
}

func TestLINScheduleDetectorUntrainedQuiet(t *testing.T) {
	d := NewLINScheduleDetector()
	if as := d.Observe(linRec(0, 0x10, "slave", 2)); len(as) != 0 {
		t.Fatalf("untrained detector alerted: %v", as)
	}
}

// --- EthernetAddrDetector ---

func ethTrained() *EthernetAddrDetector {
	d := NewEthernetAddrDetector()
	d.Train(traceOf(
		ethRec(0, 0x88B6, mac(0x51), 1, make([]byte, 8)),
		ethRec(1, 0x88B7, mac(0x52), 1, make([]byte, 8)),
	))
	return d
}

func TestEthernetAddrDetectorUnknownSource(t *testing.T) {
	d := ethTrained()
	as := d.Observe(ethRec(2, 0x88B6, mac(0x99), 1, make([]byte, 8)))
	if len(as) != 1 || !strings.Contains(as[0].Reason, "unknown source MAC 02:00:00:00:00:99") {
		t.Fatalf("alerts=%v", as)
	}
	if as := d.Observe(ethRec(3, 0x88B6, mac(0x99), 1, make([]byte, 8))); len(as) != 0 {
		t.Fatalf("unknown-source episode not deduped: %v", as)
	}
}

func TestEthernetAddrDetectorBindingDriftAndVLAN(t *testing.T) {
	d := ethTrained()
	// Known station sending another station's traffic class.
	as := d.Observe(ethRec(2, 0x88B7, mac(0x51), 1, make([]byte, 8)))
	if len(as) != 1 || !strings.Contains(as[0].Reason, "MAC binding drift") {
		t.Fatalf("alerts=%v", as)
	}
	// Known class on a new VLAN.
	as = d.Observe(ethRec(3, 0x88B6, mac(0x51), 7, make([]byte, 8)))
	if len(as) != 1 || !strings.Contains(as[0].Reason, "VLAN anomaly") {
		t.Fatalf("alerts=%v", as)
	}
	// Both deduped per episode key.
	if as := d.Observe(ethRec(4, 0x88B7, mac(0x51), 1, make([]byte, 8))); len(as) != 0 {
		t.Fatalf("drift episode not deduped: %v", as)
	}
}

// --- SOMEIPDetector ---

func someipTrained() *SOMEIPDetector {
	d := NewSOMEIPDetector()
	d.Train(traceOf(
		someipRec(0, mac(0x62), &someip.Message{ServiceID: 0x1234, MethodID: 0x01, Type: someip.TypeRequest}),
		someipRec(1, mac(0x62), &someip.Message{ServiceID: 0x1234, MethodID: 0x20, Type: someip.TypeSubscribe}),
		someipRec(2, mac(0x61), &someip.Message{ServiceID: 0x1234, MethodID: 0x20, Type: someip.TypeSubscribeAck}),
	))
	return d
}

func TestSOMEIPDetectorUnknownMethod(t *testing.T) {
	d := someipTrained()
	if as := d.Observe(someipRec(10, mac(0x62), &someip.Message{
		ServiceID: 0x1234, MethodID: 0x7F, Type: someip.TypeRequest})); len(as) != 1 ||
		!strings.Contains(as[0].Reason, "unknown service/method") {
		t.Fatalf("alerts=%v", as)
	}
	// Learned method stays quiet.
	if as := d.Observe(someipRec(11, mac(0x62), &someip.Message{
		ServiceID: 0x1234, MethodID: 0x01, Type: someip.TypeRequest})); len(as) != 0 {
		t.Fatalf("known method alerted: %v", as)
	}
}

func TestSOMEIPDetectorUnsubscribedNotification(t *testing.T) {
	d := someipTrained()
	if as := d.Observe(someipRec(10, mac(0x61), &someip.Message{
		ServiceID: 0x1234, MethodID: 0x21, Type: someip.TypeNotification})); len(as) != 1 ||
		!strings.Contains(as[0].Reason, "unsubscribed notification") {
		t.Fatalf("alerts=%v", as)
	}
	// The subscribed eventgroup is fine.
	if as := d.Observe(someipRec(11, mac(0x61), &someip.Message{
		ServiceID: 0x1234, MethodID: 0x20, Type: someip.TypeNotification})); len(as) != 0 {
		t.Fatalf("subscribed notify alerted: %v", as)
	}
}

func TestSOMEIPDetectorTracksLiveSubscriptions(t *testing.T) {
	d := someipTrained()
	// A new eventgroup subscribed after training is legitimate.
	d.Observe(someipRec(10, mac(0x62), &someip.Message{
		ServiceID: 0x1234, MethodID: 0x22, Type: someip.TypeSubscribe}))
	if as := d.Observe(someipRec(11, mac(0x61), &someip.Message{
		ServiceID: 0x1234, MethodID: 0x22, Type: someip.TypeNotification})); len(as) != 0 {
		t.Fatalf("renewed subscription alerted: %v", as)
	}
}

func TestSOMEIPDetectorSubscriptionFlood(t *testing.T) {
	d := someipTrained()
	var alerts []Alert
	for i := 0; i < 12; i++ {
		alerts = append(alerts, d.Observe(someipRec(sim.Time(10+i), mac(0x62), &someip.Message{
			ServiceID: 0x1234, MethodID: uint16(0x30 + i), Type: someip.TypeSubscribe}))...)
	}
	if len(alerts) != 1 || !strings.Contains(alerts[0].Reason, "subscription flood") {
		t.Fatalf("alerts=%v", alerts)
	}
	// A fresh window rearms the flood alert.
	as := d.Observe(someipRec(10+2*sim.Second, mac(0x62), &someip.Message{
		ServiceID: 0x1234, MethodID: 0x30, Type: someip.TypeSubscribe}))
	if len(as) != 0 {
		t.Fatalf("window rollover alerted: %v", as)
	}
}

func TestSOMEIPDetectorMalformed(t *testing.T) {
	d := someipTrained()
	as := d.Observe(ethRec(10, someip.EtherTypeSOMEIP, mac(0x62), 1, []byte{1, 2, 3}))
	if len(as) != 1 || !strings.Contains(as[0].Reason, "malformed") {
		t.Fatalf("alerts=%v", as)
	}
	// Non-SOME/IP EtherTypes are not decoded at all.
	if as := d.Observe(ethRec(11, 0x88B6, mac(0x62), 1, []byte{1, 2, 3})); len(as) != 0 {
		t.Fatalf("foreign EtherType alerted: %v", as)
	}
}
