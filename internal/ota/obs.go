package ota

import (
	"errors"

	"autosec/internal/obs"
)

// Instrument attaches the client to the observability layer (either
// argument may be nil).
//
// Trace events (subsystem "ota"): every Apply emits a "verify" instant
// when verification starts, then either "install" (Str = vehicle ID,
// Arg1 = number of targets committed) or "reject" (Str = a stable error
// class: bad-signature, rollback, expired, wrong-vehicle, mix-and-match,
// wrong-hw, hash-mismatch, incomplete, or error).
//
// Metrics: ota/installed and ota/rejected probe the client's counters.
func (c *Client) Instrument(tr *obs.Tracer, reg *obs.Registry) {
	if tr != nil {
		c.obsTr = tr
		c.obsSub = tr.Label("ota")
		c.obsVerify = tr.Label("verify")
		c.obsInstall = tr.Label("install")
		c.obsReject = tr.Label("reject")
	}
	if reg != nil {
		reg.Probe("ota/installed", func() float64 { return float64(c.Installed.Value) })
		reg.Probe("ota/rejected", func() float64 { return float64(c.Rejected.Value) })
	}
}

// errClass maps an Apply error to a stable, bounded label set, so tracing
// a hostile bundle stream cannot grow the label table without bound the
// way interning raw error strings (which embed versions and names) would.
func errClass(err error) string {
	switch {
	case errors.Is(err, ErrBadSignature):
		return "bad-signature"
	case errors.Is(err, ErrRollback):
		return "rollback"
	case errors.Is(err, ErrExpiredMeta):
		return "expired"
	case errors.Is(err, ErrWrongVehicle):
		return "wrong-vehicle"
	case errors.Is(err, ErrMixAndMatch):
		return "mix-and-match"
	case errors.Is(err, ErrWrongHW):
		return "wrong-hw"
	case errors.Is(err, ErrHashMismatch):
		return "hash-mismatch"
	case errors.Is(err, ErrIncomplete):
		return "incomplete"
	default:
		return "error"
	}
}
