package uds

import (
	"encoding/binary"
)

// Firmware download services (ISO 14229 §14): RequestDownload (0x34),
// TransferData (0x36), RequestTransferExit (0x37). This is the on-wire
// half of reflashing — the step the Miller/Valasek chain reached after
// SecurityAccess. The server stages the image in a download buffer; what
// happens to it afterwards (hash check, secure-boot anchoring) belongs to
// the OTA client and SHE layers, which the integration tests wire up.

// Download service identifiers.
const (
	SvcRequestDownload     = 0x34
	SvcTransferData        = 0x36
	SvcRequestTransferExit = 0x37
)

// download tracks an in-progress transfer.
type download struct {
	total    int
	received []byte
	nextSeq  byte
}

// maxBlockLength is the largest TransferData block the server accepts
// (fits comfortably in one ISO-TP message).
const maxBlockLength = 1024

// EnableFlashing activates the download services on the server. The
// image lands in the flash buffer retrievable with FlashBuffer; flashing
// requires security level ≥ 1 and the programming session.
func (s *Server) EnableFlashing() {
	s.flashEnabled = true
}

// FlashBuffer returns the last completely transferred image, or nil.
func (s *Server) FlashBuffer() []byte { return s.flashImage }

func (s *Server) requestDownload(req []byte) {
	if !s.flashEnabled {
		s.negative(SvcRequestDownload, NRCServiceNotSupported)
		return
	}
	// Format: [0x34][dataFormat][addrLenFormat][size uint32]; address is
	// omitted in this profile (single-partition ECU).
	if len(req) != 7 {
		s.negative(SvcRequestDownload, NRCIncorrectLength)
		return
	}
	if s.session != SessionProgramming {
		s.negative(SvcRequestDownload, NRCConditionsNotCorrect)
		return
	}
	if s.unlockedLevel == 0 {
		s.negative(SvcRequestDownload, NRCSecurityAccessDenied)
		return
	}
	size := int(binary.BigEndian.Uint32(req[3:7]))
	if size <= 0 || size > 1<<24 {
		s.negative(SvcRequestDownload, NRCRequestOutOfRange)
		return
	}
	s.dl = &download{total: size, received: make([]byte, 0, size), nextSeq: 1}
	// Positive response: lengthFormat 0x20 + maxBlockLength uint16.
	var resp [4]byte
	resp[0] = SvcRequestDownload + positiveResponseOr
	resp[1] = 0x20
	binary.BigEndian.PutUint16(resp[2:], maxBlockLength)
	s.reply(resp[:])
}

func (s *Server) transferData(req []byte) {
	if !s.flashEnabled {
		s.negative(SvcTransferData, NRCServiceNotSupported)
		return
	}
	if s.dl == nil {
		s.negative(SvcTransferData, NRCRequestSequenceError)
		return
	}
	if len(req) < 3 {
		s.negative(SvcTransferData, NRCIncorrectLength)
		return
	}
	seq := req[1]
	if seq != s.dl.nextSeq {
		s.dl = nil // abort: the tester must restart the download
		s.negative(SvcTransferData, NRCRequestSequenceError)
		return
	}
	block := req[2:]
	if len(block) > maxBlockLength || len(s.dl.received)+len(block) > s.dl.total {
		s.dl = nil
		s.negative(SvcTransferData, NRCRequestOutOfRange)
		return
	}
	s.dl.received = append(s.dl.received, block...)
	s.dl.nextSeq++
	s.reply([]byte{SvcTransferData + positiveResponseOr, seq})
}

func (s *Server) requestTransferExit(req []byte) {
	if !s.flashEnabled {
		s.negative(SvcRequestTransferExit, NRCServiceNotSupported)
		return
	}
	if s.dl == nil {
		s.negative(SvcRequestTransferExit, NRCRequestSequenceError)
		return
	}
	if len(s.dl.received) != s.dl.total {
		s.dl = nil
		s.negative(SvcRequestTransferExit, NRCRequestSequenceError)
		return
	}
	s.flashImage = s.dl.received
	s.dl = nil
	s.Flashes.Inc()
	s.reply([]byte{SvcRequestTransferExit + positiveResponseOr})
}

// Flash drives a complete client-side download of an image. done fires
// with the first error or nil on success.
func (c *Client) Flash(image []byte, done func(err error)) error {
	req := make([]byte, 7)
	req[0] = SvcRequestDownload
	req[1] = 0x00 // uncompressed, unencrypted
	req[2] = 0x40 // 4-byte size, no address
	binary.BigEndian.PutUint32(req[3:], uint32(len(image)))
	return c.Request(req, func(resp []byte) {
		payload, err := ParseResponse(SvcRequestDownload, resp)
		if err != nil {
			done(err)
			return
		}
		if len(payload) < 3 {
			done(errParse("requestDownload response too short"))
			return
		}
		block := int(binary.BigEndian.Uint16(payload[1:3]))
		if block <= 0 {
			done(errParse("zero block length"))
			return
		}
		c.flashBlocks(image, block, 1, done)
	})
}

func (c *Client) flashBlocks(rest []byte, block int, seq byte, done func(error)) {
	if len(rest) == 0 {
		err := c.Request([]byte{SvcRequestTransferExit}, func(resp []byte) {
			_, err := ParseResponse(SvcRequestTransferExit, resp)
			done(err)
		})
		if err != nil {
			done(err)
		}
		return
	}
	n := len(rest)
	if n > block {
		n = block
	}
	req := append([]byte{SvcTransferData, seq}, rest[:n]...)
	err := c.Request(req, func(resp []byte) {
		if _, err := ParseResponse(SvcTransferData, resp); err != nil {
			done(err)
			return
		}
		c.flashBlocks(rest[n:], block, seq+1, done)
	})
	if err != nil {
		done(err)
	}
}

type errParse string

func (e errParse) Error() string { return "uds: " + string(e) }
