package experiments

import (
	"context"
	"fmt"

	"autosec/internal/campaign"
)

// E22 sweeps rollout strategy × mid-campaign attack over the fleet OTA
// campaign engine: a 2000-vehicle, 4-model fleet updated in staged waves
// while the distribution channel is honest, freezing, replaying stale
// metadata, or signing with stolen keys. The cells quantify the paper's
// secure-update argument at fleet scale: verification stops everything
// short of a two-key compromise (evil installs stay 0), version skew is
// where stale-metadata replay actually bites (the rollback row's stale
// installs land exactly on the vehicles that missed the previous
// campaign), and once verification is out of the game the rollout shape
// is the only control left — the conservative strategy's abort threshold
// bounds the two-key blast radius at one ring, and key rotation turns
// the blast into a bounded failed set while the rest of the fleet
// completes under the new trust epoch. The cache columns pin the
// verify-once-per-campaign economics: cold signature checks stay at
// published-artifact scale while lookups run at fleet scale.
func E22Campaign(seed uint64) *Table {
	return E22CampaignWith(seed, 1)
}

// e22 fleet shape: big enough that wave structure and skew populations
// are visible, small enough to keep the full 12-campaign sweep cheap.
const (
	e22Fleet  = 2000
	e22Models = 4
)

// E22CampaignWith runs the sweep at the given fleet worker count.
// Everything in the table is index-deterministic, so the rendered table
// is byte-identical at any worker count — benchreport -fleetpar reruns
// it in parallel and CI byte-diffs the output.
func E22CampaignWith(seed uint64, workers int) *Table {
	t := &Table{
		ID:    "E22",
		Title: "Fleet OTA campaigns under attack: staged rollout × attack matrix (§6)",
		Claim: "staged waves with abort thresholds and key rotation bound the blast radius of update-channel compromise; memoized verification serves the fleet at published-artifact cost",
		Columns: []string{"strategy", "attack", "waves",
			"updated", "pending", "stale", "evil", "frozen", "blocked", "failed",
			"response", "cold verifies", "lookups"},
	}
	strategies := []campaign.Strategy{
		{Name: "conservative", Canary: 16, Growth: 4, AbortThreshold: 0.5},
		{Name: "aggressive", Canary: 256, Growth: 8, AbortThreshold: 0},
	}
	type attackRow struct {
		name   string
		plan   campaign.AttackPlan
		rotate bool
	}
	attacks := []attackRow{
		{"none", campaign.AttackPlan{Kind: campaign.AttackNone}, false},
		{"freeze", campaign.AttackPlan{Kind: campaign.AttackFreeze, FromWave: 1}, false},
		{"rollback", campaign.AttackPlan{Kind: campaign.AttackRollback, FromWave: 1}, false},
		{"imagekey", campaign.AttackPlan{Kind: campaign.AttackImageKey, FromWave: 1}, false},
		{"twokey", campaign.AttackPlan{Kind: campaign.AttackTwoKey, FromWave: 1}, false},
		{"twokey+rotate", campaign.AttackPlan{Kind: campaign.AttackTwoKey, FromWave: 1}, true},
	}
	for _, strat := range strategies {
		for _, a := range attacks {
			cfg := campaign.Config{
				Fleet:         e22Fleet,
				Models:        e22Models,
				Workers:       workers,
				Seed:          seed,
				Strategy:      strat,
				Attack:        a.plan,
				RotateAtWave:  -1,
				RotateOnBlast: a.rotate,
			}
			eng, err := campaign.New(cfg)
			if err != nil {
				panic(fmt.Sprintf("E22: %s/%s: %v", strat.Name, a.name, err))
			}
			res, err := eng.Run(context.Background())
			if err != nil {
				panic(fmt.Sprintf("E22: %s/%s: %v", strat.Name, a.name, err))
			}
			response := "-"
			switch {
			case res.Aborted:
				response = fmt.Sprintf("abort@%d", res.AbortWave)
			case res.Rotations > 0:
				response = fmt.Sprintf("rotate x%d", res.Rotations)
			}
			t.AddRow(strat.Name, a.name, len(res.Waves),
				res.Outcomes[campaign.OutcomeUpdated],
				res.Outcomes[campaign.OutcomePending],
				res.Outcomes[campaign.OutcomeStaleInstall],
				res.Outcomes[campaign.OutcomeEvilInstall],
				res.Outcomes[campaign.OutcomeFrozen],
				res.Outcomes[campaign.OutcomeBlocked],
				res.Outcomes[campaign.OutcomeFailed],
				response,
				int(res.Cache.SigVerifies),
				int(res.Cache.SigLookups))
		}
	}
	return t
}
