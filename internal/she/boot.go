package she

import (
	"crypto/subtle"
	"errors"
)

// Secure boot (spec §10): at reset, the boot ROM streams the boot image
// through the SHE, which compares CMAC(BOOT_MAC_KEY, image) against the
// stored BOOT_MAC slot. On mismatch, keys flagged with BootProtection are
// disabled for the rest of the session — the device still runs (fail-
// operational, a functional-safety requirement), but it cannot use its
// protected secrets, so a tampered ECU cannot authenticate traffic or
// accept OTA payloads.

// ErrBootMACUnset is returned when secure boot runs without a provisioned
// BOOT_MAC_KEY or BOOT_MAC slot.
var ErrBootMACUnset = errors.New("she: BOOT_MAC_KEY or BOOT_MAC not provisioned")

// DefineBootMAC computes and stores the expected boot MAC for an image
// (CMD_BOOT_DEFINE). Permitted only before the first secure boot of a
// session, mirroring the spec's one-shot autonomous bootstrap.
func (e *Engine) DefineBootMAC(image []byte) error {
	if e.bootDone {
		return ErrSequence
	}
	bk := e.slots[BootMACKey]
	if !bk.valid {
		return ErrBootMACUnset
	}
	mac, err := CMAC(bk.key[:], image)
	if err != nil {
		return err
	}
	var m [BlockSize]byte
	copy(m[:], mac)
	e.slots[BootMAC] = slot{key: m, valid: true}
	return nil
}

// SecureBoot verifies the image against the stored BOOT_MAC
// (CMD_SECURE_BOOT + CMD_BOOT_OK/CMD_BOOT_FAILURE). It records the result;
// boot-protected keys become unusable if verification failed.
func (e *Engine) SecureBoot(image []byte) (bool, error) {
	bk := e.slots[BootMACKey]
	bm := e.slots[BootMAC]
	if !bk.valid || !bm.valid {
		return false, ErrBootMACUnset
	}
	mac, err := CMAC(bk.key[:], image)
	if err != nil {
		return false, err
	}
	e.bootDone = true
	e.bootVerified = subtle.ConstantTimeCompare(mac, bm.key[:]) == 1
	return e.bootVerified, nil
}

// BootVerified reports the outcome of the last SecureBoot, and whether one
// has run at all this session.
func (e *Engine) BootVerified() (verified, ran bool) {
	return e.bootVerified, e.bootDone
}

// ResetSession models an ECU reset: the boot state clears (keys protected
// by BootProtection become usable again until the next failed boot) and
// the volatile RAM key is lost.
func (e *Engine) ResetSession() {
	e.bootDone = false
	e.bootVerified = false
	e.slots[RAMKey] = slot{}
}
