package isotp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"autosec/internal/can"
	"autosec/internal/sim"
)

// pair builds two endpoints on one bus: tester (0x7E0 -> 0x7E8) and ECU.
func pair(t *testing.T, testerCfg, ecuCfg Config) (*sim.Kernel, *Endpoint, *Endpoint) {
	t.Helper()
	k := sim.NewKernel(1)
	bus := can.NewBus(k, "diag", 500_000)
	tc := can.NewController("tester")
	ec := can.NewController("ecu")
	bus.Attach(tc)
	bus.Attach(ec)
	if testerCfg.TxID == 0 {
		testerCfg = Config{TxID: 0x7E0, RxID: 0x7E8}
	}
	if ecuCfg.TxID == 0 {
		ecuCfg = Config{TxID: 0x7E8, RxID: 0x7E0}
	}
	return k, New(k, tc, testerCfg), New(k, ec, ecuCfg)
}

func TestSingleFrameRoundTrip(t *testing.T) {
	k, tester, ecuEP := pair(t, Config{}, Config{})
	var got []byte
	ecuEP.OnMessage(func(_ sim.Time, p []byte) { got = p })
	doneErr := errors.New("unset")
	if err := tester.Send([]byte{0x3E, 0x00}, func(err error) { doneErr = err }); err != nil {
		t.Fatal(err)
	}
	_ = k.Run()
	if doneErr != nil {
		t.Fatalf("done: %v", doneErr)
	}
	if !bytes.Equal(got, []byte{0x3E, 0x00}) {
		t.Fatalf("got %x", got)
	}
	if tester.MessagesSent.Value != 1 || ecuEP.MessagesRecv.Value != 1 {
		t.Fatal("counters wrong")
	}
}

func TestMultiFrameRoundTrip(t *testing.T) {
	k, tester, ecuEP := pair(t, Config{}, Config{})
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	var got []byte
	ecuEP.OnMessage(func(_ sim.Time, p []byte) { got = p })
	var doneErr error = errors.New("unset")
	if err := tester.Send(payload, func(err error) { doneErr = err }); err != nil {
		t.Fatal(err)
	}
	_ = k.Run()
	if doneErr != nil {
		t.Fatalf("done: %v", doneErr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %d bytes vs %d", len(got), len(payload))
	}
}

func TestMaxLengthMessage(t *testing.T) {
	k, tester, ecuEP := pair(t, Config{}, Config{})
	payload := make([]byte, MaxMessage)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var got []byte
	ecuEP.OnMessage(func(_ sim.Time, p []byte) { got = p })
	if err := tester.Send(payload, nil); err != nil {
		t.Fatal(err)
	}
	_ = k.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("4095-byte transfer failed: got %d bytes", len(got))
	}
}

func TestTooLongRejected(t *testing.T) {
	_, tester, _ := pair(t, Config{}, Config{})
	if err := tester.Send(make([]byte, MaxMessage+1), nil); !errors.Is(err, ErrTooLong) {
		t.Fatalf("err=%v", err)
	}
}

func TestBusyRejected(t *testing.T) {
	k, tester, _ := pair(t, Config{}, Config{})
	if err := tester.Send(make([]byte, 50), nil); err != nil {
		t.Fatal(err)
	}
	if err := tester.Send(make([]byte, 50), nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("err=%v", err)
	}
	_ = k.Run()
	// After completion a new transfer is accepted.
	if err := tester.Send(make([]byte, 50), nil); err != nil {
		t.Fatal(err)
	}
	_ = k.Run()
}

func TestBlockSizeFlowControl(t *testing.T) {
	// Receiver grants 4 frames per FC round.
	k, tester, ecuEP := pair(t,
		Config{TxID: 0x7E0, RxID: 0x7E8},
		Config{TxID: 0x7E8, RxID: 0x7E0, BlockSize: 4})
	payload := make([]byte, 200)
	var got []byte
	ecuEP.OnMessage(func(_ sim.Time, p []byte) { got = p })
	if err := tester.Send(payload, nil); err != nil {
		t.Fatal(err)
	}
	_ = k.Run()
	if len(got) != 200 {
		t.Fatalf("got %d bytes with BS=4", len(got))
	}
}

func TestSeparationTimePacesFrames(t *testing.T) {
	// Receiver demands 5ms between consecutive frames; the 100-byte
	// transfer needs 14 CFs, so it must take ≥ 13*5ms.
	k, tester, ecuEP := pair(t,
		Config{TxID: 0x7E0, RxID: 0x7E8},
		Config{TxID: 0x7E8, RxID: 0x7E0, SeparationTime: 5 * sim.Millisecond})
	var doneAt sim.Time
	ecuEP.OnMessage(func(at sim.Time, _ []byte) { doneAt = at })
	if err := tester.Send(make([]byte, 100), nil); err != nil {
		t.Fatal(err)
	}
	_ = k.Run()
	if doneAt < 13*5*sim.Millisecond {
		t.Fatalf("transfer completed at %v, too fast for STmin", doneAt)
	}
}

func TestReceiverOverflow(t *testing.T) {
	k, tester, ecuEP := pair(t,
		Config{TxID: 0x7E0, RxID: 0x7E8},
		Config{TxID: 0x7E8, RxID: 0x7E0, MaxBuffer: 64})
	var doneErr error
	if err := tester.Send(make([]byte, 100), func(err error) { doneErr = err }); err != nil {
		t.Fatal(err)
	}
	_ = k.Run()
	if !errors.Is(doneErr, ErrOverflow) {
		t.Fatalf("done err=%v", doneErr)
	}
	if ecuEP.Overflows.Value != 1 {
		t.Fatalf("overflows=%d", ecuEP.Overflows.Value)
	}
}

func TestSequenceErrorAborts(t *testing.T) {
	// Inject a forged consecutive frame with the wrong sequence number
	// mid-transfer; the receiver must abort reassembly.
	k := sim.NewKernel(1)
	bus := can.NewBus(k, "diag", 500_000)
	tc := can.NewController("tester")
	ec := can.NewController("ecu")
	atk := can.NewController("attacker")
	bus.Attach(tc)
	bus.Attach(ec)
	bus.Attach(atk)
	tester := New(k, tc, Config{TxID: 0x7E0, RxID: 0x7E8})
	ecuEP := New(k, ec, Config{TxID: 0x7E8, RxID: 0x7E0, SeparationTime: 2 * sim.Millisecond})
	delivered := 0
	ecuEP.OnMessage(func(sim.Time, []byte) { delivered++ })
	if err := tester.Send(make([]byte, 100), nil); err != nil {
		t.Fatal(err)
	}
	// The attacker injects a CF with sequence 9 shortly after the start.
	k.After(sim.Millisecond, func() {
		_ = atk.Send(can.Frame{ID: 0x7E0, Data: []byte{byte(pciConsecutive<<4) | 9, 1, 2, 3}}, nil)
	})
	_ = k.RunUntil(sim.Second)
	if delivered != 0 {
		t.Fatal("corrupted transfer delivered")
	}
	if ecuEP.SeqErrors.Value != 1 {
		t.Fatalf("seq errors=%d", ecuEP.SeqErrors.Value)
	}
}

func TestStrayFramesIgnored(t *testing.T) {
	k, _, ecuEP := pair(t, Config{}, Config{})
	// A stray consecutive frame with no transfer active, malformed single
	// frames, and a stray flow control must all be ignored quietly.
	k2, bus := k, can.NewBus(k, "x", 500_000)
	_ = k2
	_ = bus
	ecuEP.handle(0, []byte{byte(pciConsecutive<<4) | 1, 1})
	ecuEP.handle(0, []byte{byte(pciSingle << 4)})            // length 0
	ecuEP.handle(0, []byte{byte(pciSingle<<4) | 9, 1})       // length > 7
	ecuEP.handle(0, []byte{byte(pciFlowControl << 4), 0, 0}) // no tx active
	ecuEP.handle(0, nil)
	if ecuEP.MessagesRecv.Value != 0 {
		t.Fatal("garbage counted as messages")
	}
}

func TestSeparationTimeCodec(t *testing.T) {
	cases := []struct {
		d    sim.Duration
		want byte
	}{
		{0, 0},
		{3 * sim.Millisecond, 3},
		{127 * sim.Millisecond, 127},
		{500 * sim.Millisecond, 127}, // clamped
		{300 * sim.Microsecond, 0xF3},
		{50 * sim.Microsecond, 0xF1}, // floor to 100us
	}
	for _, c := range cases {
		if got := encodeSeparationTime(c.d); got != c.want {
			t.Errorf("encode(%v)=%#x, want %#x", c.d, got, c.want)
		}
	}
	if decodeSeparationTime(5) != 5*sim.Millisecond {
		t.Error("decode ms wrong")
	}
	if decodeSeparationTime(0xF4) != 400*sim.Microsecond {
		t.Error("decode us wrong")
	}
	if decodeSeparationTime(0xAA) != 127*sim.Millisecond {
		t.Error("reserved value not conservative")
	}
}

// Property: any payload size round-trips.
func TestRoundTripProperty(t *testing.T) {
	f := func(size uint16, fill byte) bool {
		n := int(size) % 600
		payload := bytes.Repeat([]byte{fill}, n)
		if n == 0 {
			payload = []byte{fill}
		}
		k := sim.NewKernel(uint64(size))
		bus := can.NewBus(k, "diag", 500_000)
		tc := can.NewController("t")
		ec := can.NewController("e")
		bus.Attach(tc)
		bus.Attach(ec)
		tester := New(k, tc, Config{TxID: 0x7E0, RxID: 0x7E8})
		ecuEP := New(k, ec, Config{TxID: 0x7E8, RxID: 0x7E0, BlockSize: 3})
		var got []byte
		ecuEP.OnMessage(func(_ sim.Time, p []byte) { got = p })
		if err := tester.Send(payload, nil); err != nil {
			return false
		}
		_ = k.Run()
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
