package policy

import (
	"errors"
	"fmt"
	"testing"
)

func newEngine(t *testing.T) (*Authority, *Engine) {
	t.Helper()
	a, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	return a, NewEngine(a.PublicKey())
}

type recordingApplier struct {
	kind    string
	applied []Directive
	vErr    error
	aErr    error
}

func (r *recordingApplier) Kind() string { return r.kind }
func (r *recordingApplier) Validate(Directive) error {
	return r.vErr
}
func (r *recordingApplier) Apply(d Directive) error {
	if r.aErr != nil {
		return r.aErr
	}
	r.applied = append(r.applied, d)
	return nil
}

func TestInstallHappyPath(t *testing.T) {
	a, e := newEngine(t)
	gw := &recordingApplier{kind: "gateway.rule"}
	ids := &recordingApplier{kind: "ids.detector"}
	if err := e.Register(gw); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(ids); err != nil {
		t.Fatal(err)
	}
	p := &Policy{
		Name:    "baseline",
		Version: 1,
		Directives: []Directive{
			{Kind: "gateway.rule", Params: map[string]string{"from": "infotainment", "action": "deny"}},
			{Kind: "ids.detector", Params: map[string]string{"name": "frequency"}},
		},
	}
	a.Sign(p)
	if err := e.Install(p); err != nil {
		t.Fatal(err)
	}
	if len(gw.applied) != 1 || len(ids.applied) != 1 {
		t.Fatalf("applied %d/%d", len(gw.applied), len(ids.applied))
	}
	if e.InstalledVersion("baseline") != 1 {
		t.Fatalf("version=%d", e.InstalledVersion("baseline"))
	}
	if len(e.History) != 1 || e.History[0] != "baseline@v1" {
		t.Fatalf("history=%v", e.History)
	}
}

func TestInstallRejectsUnsigned(t *testing.T) {
	_, e := newEngine(t)
	p := &Policy{Name: "x", Version: 1}
	if err := e.Install(p); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err=%v", err)
	}
}

func TestInstallRejectsForeignAuthority(t *testing.T) {
	_, e := newEngine(t)
	rogue, _ := NewAuthority()
	p := &Policy{Name: "x", Version: 1}
	rogue.Sign(p)
	if err := e.Install(p); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err=%v", err)
	}
}

func TestInstallRejectsTamper(t *testing.T) {
	a, e := newEngine(t)
	_ = e.Register(&recordingApplier{kind: "k"})
	p := &Policy{Name: "x", Version: 1, Directives: []Directive{{Kind: "k", Params: map[string]string{"a": "1"}}}}
	a.Sign(p)
	p.Directives[0].Params["a"] = "2"
	if err := e.Install(p); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err=%v", err)
	}
}

func TestInstallVersionMonotonic(t *testing.T) {
	a, e := newEngine(t)
	p1 := &Policy{Name: "x", Version: 2}
	a.Sign(p1)
	if err := e.Install(p1); err != nil {
		t.Fatal(err)
	}
	replay := &Policy{Name: "x", Version: 2}
	a.Sign(replay)
	if err := e.Install(replay); !errors.Is(err, ErrRollback) {
		t.Fatalf("replay: err=%v", err)
	}
	old := &Policy{Name: "x", Version: 1}
	a.Sign(old)
	if err := e.Install(old); !errors.Is(err, ErrRollback) {
		t.Fatalf("downgrade: err=%v", err)
	}
	// Distinct names version independently.
	other := &Policy{Name: "y", Version: 1}
	a.Sign(other)
	if err := e.Install(other); err != nil {
		t.Fatal(err)
	}
}

func TestInstallRequiresApplierCoverage(t *testing.T) {
	a, e := newEngine(t)
	p := &Policy{Name: "x", Version: 1, Directives: []Directive{{Kind: "ghost"}}}
	a.Sign(p)
	if err := e.Install(p); !errors.Is(err, ErrNoApplier) {
		t.Fatalf("err=%v", err)
	}
}

func TestInstallAtomicOnValidationFailure(t *testing.T) {
	a, e := newEngine(t)
	good := &recordingApplier{kind: "good"}
	bad := &recordingApplier{kind: "bad", vErr: fmt.Errorf("nope")}
	_ = e.Register(good)
	_ = e.Register(bad)
	p := &Policy{Name: "x", Version: 1, Directives: []Directive{
		{Kind: "good"}, {Kind: "bad"},
	}}
	a.Sign(p)
	if err := e.Install(p); !errors.Is(err, ErrValidation) {
		t.Fatalf("err=%v", err)
	}
	if len(good.applied) != 0 {
		t.Fatal("validation failure still applied directives")
	}
	if e.InstalledVersion("x") != 0 {
		t.Fatal("failed install bumped version")
	}
}

func TestInstallApplyFailureSurfaces(t *testing.T) {
	a, e := newEngine(t)
	bad := &recordingApplier{kind: "k", aErr: fmt.Errorf("io")}
	_ = e.Register(bad)
	p := &Policy{Name: "x", Version: 1, Directives: []Directive{{Kind: "k"}}}
	a.Sign(p)
	if err := e.Install(p); !errors.Is(err, ErrApply) {
		t.Fatalf("err=%v", err)
	}
	if e.InstalledVersion("x") != 0 {
		t.Fatal("failed apply bumped version")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	_, e := newEngine(t)
	_ = e.Register(&recordingApplier{kind: "k"})
	if err := e.Register(&recordingApplier{kind: "k"}); !errors.Is(err, ErrDupApplier) {
		t.Fatalf("err=%v", err)
	}
}

func TestKinds(t *testing.T) {
	_, e := newEngine(t)
	_ = e.Register(&recordingApplier{kind: "b"})
	_ = e.Register(&recordingApplier{kind: "a"})
	ks := e.Kinds()
	if len(ks) != 2 || ks[0] != "a" || ks[1] != "b" {
		t.Fatalf("kinds=%v", ks)
	}
}

func TestApplierFunc(t *testing.T) {
	applied := false
	af := ApplierFunc{K: "x", Ap: func(Directive) error { applied = true; return nil }}
	if af.Kind() != "x" {
		t.Fatal("kind")
	}
	if err := af.Validate(Directive{}); err != nil {
		t.Fatal(err)
	}
	if err := af.Apply(Directive{}); err != nil || !applied {
		t.Fatal("apply")
	}
	empty := ApplierFunc{K: "y"}
	if err := empty.Apply(Directive{}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectiveParam(t *testing.T) {
	d := Directive{Params: map[string]string{"a": "1"}}
	if d.Param("a", "z") != "1" || d.Param("b", "z") != "z" {
		t.Fatal("Param defaults wrong")
	}
}

func TestCanonicalOrderIndependent(t *testing.T) {
	// Two policies with the same params inserted in different orders sign
	// identically (map iteration order must not leak into the signature).
	p1 := &Policy{Name: "x", Version: 1, Directives: []Directive{
		{Kind: "k", Params: map[string]string{"a": "1", "b": "2", "c": "3"}},
	}}
	p2 := &Policy{Name: "x", Version: 1, Directives: []Directive{
		{Kind: "k", Params: map[string]string{"c": "3", "b": "2", "a": "1"}},
	}}
	if string(p1.canonical()) != string(p2.canonical()) {
		t.Fatal("canonical encoding depends on map order")
	}
}
