package ieee1609

import (
	"errors"
	"testing"

	"autosec/internal/sim"
)

func obu(t *testing.T) (*Credential, *Store) {
	t.Helper()
	_, sub, store := pki(t)
	cred, err := sub.Issue("obu-1", []PSID{PSIDBasicSafety}, 0, sim.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	return cred, store
}

func TestSignVerifyRoundTrip(t *testing.T) {
	cred, store := obu(t)
	msg, err := cred.Sign(PSIDBasicSafety, []byte("BSM: pos=1,2 speed=30"), 5*sim.Second, false)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := store.Verify(msg, 5*sim.Second+100*sim.Millisecond, VerifyOptions{Freshness: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Subject != "obu-1" {
		t.Fatalf("signer %q", cert.Subject)
	}
}

func TestSignRequiresPermission(t *testing.T) {
	cred, _ := obu(t)
	if _, err := cred.Sign(PSIDInfrastructry, []byte("fake RSU"), 0, false); !errors.Is(err, ErrPSIDDenied) {
		t.Fatalf("err=%v", err)
	}
}

func TestVerifyRejectsTamperedPayload(t *testing.T) {
	cred, store := obu(t)
	msg, _ := cred.Sign(PSIDBasicSafety, []byte("speed=30"), 0, false)
	msg.Payload[0] = 'X'
	if _, err := store.Verify(msg, sim.Second, VerifyOptions{}); !errors.Is(err, ErrMsgTampered) {
		t.Fatalf("err=%v", err)
	}
}

func TestVerifyRejectsPSIDSwap(t *testing.T) {
	cred, store := obu(t)
	msg, _ := cred.Sign(PSIDBasicSafety, []byte("x"), 0, false)
	msg.PSID = PSIDMisbehavior
	if _, err := store.Verify(msg, sim.Second, VerifyOptions{}); err == nil {
		t.Fatal("PSID swap accepted")
	}
}

func TestVerifyFreshness(t *testing.T) {
	cred, store := obu(t)
	msg, _ := cred.Sign(PSIDBasicSafety, []byte("x"), 10*sim.Second, false)
	if _, err := store.Verify(msg, 12*sim.Second, VerifyOptions{Freshness: sim.Second}); !errors.Is(err, ErrStale) {
		t.Fatalf("stale: err=%v", err)
	}
	if _, err := store.Verify(msg, 9*sim.Second, VerifyOptions{}); !errors.Is(err, ErrFuture) {
		t.Fatalf("future: err=%v", err)
	}
	if _, err := store.Verify(msg, 9*sim.Second+700*sim.Millisecond, VerifyOptions{FutureSlack: 200 * sim.Millisecond}); !errors.Is(err, ErrFuture) {
		t.Fatalf("future beyond slack: err=%v", err)
	}
	if _, err := store.Verify(msg, 10*sim.Second-100*sim.Millisecond, VerifyOptions{FutureSlack: 200 * sim.Millisecond}); err != nil {
		t.Fatalf("within slack: err=%v", err)
	}
}

func TestVerifyReplayOfOldMessageIsStale(t *testing.T) {
	// The freshness window is the anti-replay mechanism for broadcast BSMs.
	cred, store := obu(t)
	msg, _ := cred.Sign(PSIDBasicSafety, []byte("brake warning"), sim.Second, false)
	if _, err := store.Verify(msg, sim.Second+50*sim.Millisecond, VerifyOptions{Freshness: 500 * sim.Millisecond}); err != nil {
		t.Fatalf("fresh message rejected: %v", err)
	}
	// Attacker replays it 10 seconds later.
	if _, err := store.Verify(msg, 11*sim.Second, VerifyOptions{Freshness: 500 * sim.Millisecond}); !errors.Is(err, ErrStale) {
		t.Fatalf("replay accepted: %v", err)
	}
}

func TestDigestOnlyMessages(t *testing.T) {
	cred, store := obu(t)
	// First message carries the full cert.
	full, _ := cred.Sign(PSIDBasicSafety, []byte("1"), 0, false)
	if _, err := store.Verify(full, sim.Millisecond, VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	// Digest-only now resolves from the store's cache.
	short, _ := cred.Sign(PSIDBasicSafety, []byte("2"), sim.Second, true)
	if short.Cert != nil {
		t.Fatal("digest-only message carries a cert")
	}
	if _, err := store.Verify(short, sim.Second, VerifyOptions{}); err != nil {
		t.Fatalf("digest-only verify: %v", err)
	}
	// A fresh store cannot resolve the digest.
	_, sub, fresh := pki(t)
	_ = sub
	if _, err := fresh.Verify(short, sim.Second, VerifyOptions{}); !errors.Is(err, ErrNoCert) {
		t.Fatalf("err=%v", err)
	}
}

func TestWireBytesDigestSmaller(t *testing.T) {
	cred, _ := obu(t)
	full, _ := cred.Sign(PSIDBasicSafety, []byte("payload"), 0, false)
	short, _ := cred.Sign(PSIDBasicSafety, []byte("payload"), 0, true)
	if short.WireBytes() >= full.WireBytes() {
		t.Fatalf("digest message not smaller: %d vs %d", short.WireBytes(), full.WireBytes())
	}
}

func TestVerifyRevokedSigner(t *testing.T) {
	root, sub, store := pki(t)
	cred, _ := sub.Issue("obu-1", []PSID{PSIDBasicSafety}, 0, sim.Hour, false)
	msg, _ := cred.Sign(PSIDBasicSafety, []byte("x"), 0, false)
	crl, _ := root.SignCRL(1, []HashedID8{cred.Cert.ID()})
	if err := store.SetCRL(crl, sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Verify(msg, sim.Millisecond, VerifyOptions{}); !errors.Is(err, ErrRevoked) {
		t.Fatalf("err=%v", err)
	}
}

func TestPseudonymPoolRotation(t *testing.T) {
	_, sub, _ := pki(t)
	pool, err := NewPseudonymPool(sub, 5, []PSID{PSIDBasicSafety}, 0, sim.Hour, sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 5 {
		t.Fatalf("size=%d", pool.Size())
	}
	first := pool.Active(0)
	if pool.Active(30*sim.Second) != first {
		t.Fatal("rotated before period elapsed")
	}
	second := pool.Active(sim.Minute)
	if second == first {
		t.Fatal("did not rotate at period")
	}
	// Pseudonym certs carry no subject.
	if second.Cert.Subject != "" || !second.Cert.Pseudonym {
		t.Fatalf("pseudonym leaks identity: %+v", second.Cert)
	}
	// Wraps after exhausting the pool: rotations at 2,3,4 minutes walk the
	// remaining credentials; the rotation at 5 minutes reuses the first.
	for i := 2; i <= 4; i++ {
		pool.Active(sim.Time(i) * sim.Minute)
	}
	again := pool.Active(5 * sim.Minute)
	if again != first {
		t.Fatal("pool did not wrap to the first credential")
	}
	if pool.Rotations() != 5 {
		t.Fatalf("rotations=%d", pool.Rotations())
	}
}

func TestPseudonymPoolValidation(t *testing.T) {
	_, sub, _ := pki(t)
	if _, err := NewPseudonymPool(sub, 0, nil, 0, sim.Hour, sim.Minute); err == nil {
		t.Fatal("empty pool accepted")
	}
}

func TestPseudonymSignedMessageVerifies(t *testing.T) {
	_, sub, store := pki(t)
	pool, _ := NewPseudonymPool(sub, 3, []PSID{PSIDBasicSafety}, 0, sim.Hour, sim.Minute)
	cred := pool.Active(0)
	msg, err := cred.Sign(PSIDBasicSafety, []byte("anon BSM"), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := store.Verify(msg, sim.Millisecond, VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Subject != "" {
		t.Fatal("verified pseudonym exposes a subject")
	}
}
