package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStreamDeterministicByName(t *testing.T) {
	a := NewStream(7, "x")
	b := NewStream(7, "x")
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same (seed,name) diverged at %d", i)
		}
	}
}

func TestStreamIndependentByName(t *testing.T) {
	a := NewStream(7, "x")
	b := NewStream(7, "y")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different names collided %d/1000 times", same)
	}
}

func TestStreamFloat64Range(t *testing.T) {
	s := NewStream(1, "f")
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestStreamIntnRange(t *testing.T) {
	s := NewStream(1, "i")
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 10k draws", len(seen))
	}
}

func TestStreamIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewStream(1, "p").Intn(0)
}

func TestStreamNormMoments(t *testing.T) {
	s := NewStream(3, "g")
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance %.4f, want ~1", variance)
	}
}

func TestStreamExpMean(t *testing.T) {
	s := NewStream(3, "e")
	n := 100000
	rate := 4.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(rate)
	}
	mean := sum / float64(n)
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp(%v) mean %.4f, want %.4f", rate, mean, 1/rate)
	}
}

func TestStreamBool(t *testing.T) {
	s := NewStream(5, "b")
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) hit rate %.4f", frac)
	}
}

func TestStreamPerm(t *testing.T) {
	s := NewStream(5, "perm")
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestStreamDurationBounds(t *testing.T) {
	s := NewStream(5, "d")
	for i := 0; i < 1000; i++ {
		d := s.Duration(10, 20)
		if d < 10 || d > 20 {
			t.Fatalf("Duration out of bounds: %v", d)
		}
	}
	if d := s.Duration(30, 30); d != 30 {
		t.Fatalf("degenerate Duration = %v, want 30", d)
	}
	if d := s.Duration(30, 10); d != 30 {
		t.Fatalf("inverted Duration = %v, want lo", d)
	}
}

func TestStreamPick(t *testing.T) {
	s := NewStream(9, "pick")
	counts := make([]int, 3)
	w := []float64{1, 2, 7}
	n := 100000
	for i := 0; i < n; i++ {
		counts[s.Pick(w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Pick weight %d: got %.3f, want %.3f", i, got, want)
		}
	}
}

func TestStreamPickPanics(t *testing.T) {
	s := NewStream(9, "pp")
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		w := w
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Pick(%v) did not panic", w)
				}
			}()
			s.Pick(w)
		}()
	}
}

func TestStreamBytes(t *testing.T) {
	s := NewStream(11, "bytes")
	b := make([]byte, 37)
	s.Bytes(b)
	zero := 0
	for _, x := range b {
		if x == 0 {
			zero++
		}
	}
	if zero > 5 {
		t.Fatalf("suspiciously many zero bytes: %d/37", zero)
	}
}

// Property: Jitter stays within the requested fraction.
func TestStreamJitterProperty(t *testing.T) {
	s := NewStream(13, "jitter")
	f := func(raw uint32) bool {
		d := Duration(raw%1000000 + 1)
		j := s.Jitter(d, 0.1)
		lo := float64(d) * 0.899
		hi := float64(d) * 1.101
		return float64(j) >= lo && float64(j) <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Observe(v)
	}
	if s.N() != 5 {
		t.Fatalf("N=%d", s.N())
	}
	if s.Mean() != 3 {
		t.Errorf("mean=%v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if q := s.Quantile(0.5); q != 3 {
		t.Errorf("p50=%v", q)
	}
	if v := s.Var(); math.Abs(v-2) > 1e-9 {
		t.Errorf("var=%v, want 2", v)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 {
		t.Error("empty summary moments should be 0")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty min/max sentinels wrong")
	}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
	if s.String() != "n=0" {
		t.Errorf("String=%q", s.String())
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "frames"}
	c.Inc()
	c.Add(4)
	if c.Value != 5 {
		t.Fatalf("counter=%d", c.Value)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestRate(t *testing.T) {
	r := Rate{Events: 500, Since: 0}
	if got := r.PerSecond(Second); got != 500 {
		t.Fatalf("rate=%v", got)
	}
	if got := r.PerSecond(0); got != 0 {
		t.Fatalf("zero-span rate=%v", got)
	}
}

func TestSummaryReserve(t *testing.T) {
	var s Summary
	s.Observe(2)
	s.Observe(1)
	s.Reserve(2000)
	if s.N() != 2 || s.Min() != 1 || s.Max() != 2 {
		t.Fatalf("Reserve disturbed samples: n=%d min=%v max=%v", s.N(), s.Min(), s.Max())
	}
	// The reserved buffer must absorb 2000 further observations without
	// reallocating (AllocsPerRun makes one warm-up call plus one measured
	// call, 1000 observations each).
	if allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < 1000; i++ {
			s.Observe(float64(i))
		}
	}); allocs != 0 {
		t.Fatalf("Observe allocated %v times after Reserve, want 0", allocs)
	}
	s.Reserve(0)  // no-op
	s.Reserve(-5) // no-op
	if s.N() != 2002 {
		t.Fatalf("n=%d after observes, want 2002", s.N())
	}
}

// Back-to-back order-statistic reads share one sort; interleaved observes
// invalidate it; pre-ordered sample sets are detected without re-sorting.
func TestSummaryQuantileConsistency(t *testing.T) {
	var s Summary
	for i := 100; i > 0; i-- {
		s.Observe(float64(i))
	}
	if s.Quantile(0.5) != 50 || s.Quantile(0.99) != 99 || s.Min() != 1 || s.Max() != 100 {
		t.Fatalf("order statistics wrong: p50=%v p99=%v min=%v max=%v",
			s.Quantile(0.5), s.Quantile(0.99), s.Min(), s.Max())
	}
	s.Observe(0.5)
	if s.Min() != 0.5 || s.Quantile(1) != 100 {
		t.Fatalf("post-observe order statistics wrong: min=%v max=%v", s.Min(), s.Quantile(1))
	}
}
