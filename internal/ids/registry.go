package ids

import (
	"autosec/internal/netif"
)

// MediumDetector is a Detector that models one medium's native
// semantics — FlexRay TDMA ownership, the LIN schedule table, Ethernet
// addressing, SOME/IP service behaviour. The registry routes it only
// the records of its medium, so cross-media traffic never perturbs its
// state and the observe hot path skips it for every other frame.
type MediumDetector interface {
	Detector
	// Medium reports the single netif.Kind the detector understands.
	Medium() netif.Kind
}

// Registry is the medium-keyed detector table at the heart of the
// engine. Medium-agnostic detectors (the statistical families) sit in
// the global set and see every record; MediumDetectors sit in dense
// per-kind buckets and see only their own medium's records.
//
// Alert merge order is deterministic by construction: for each record,
// global detectors run first in install order, then the record's
// medium bucket in install order. Install order is the Register call
// order, so two runs that install the same detectors the same way
// produce byte-identical alert streams.
type Registry struct {
	global []Detector
	byKind [netif.NumKinds][]Detector
}

// Register installs a detector: MediumDetectors route to their
// medium's bucket, everything else to the global set.
func (r *Registry) Register(d Detector) {
	if md, ok := d.(MediumDetector); ok {
		k := md.Medium()
		if int(k) < len(r.byKind) {
			r.byKind[k] = append(r.byKind[k], d)
			return
		}
	}
	r.global = append(r.global, d)
}

// RegisterFor installs a detector in one medium's bucket regardless of
// whether it implements MediumDetector — the hook for scoping a
// statistical detector to a single network.
func (r *Registry) RegisterFor(k netif.Kind, d Detector) {
	if int(k) >= len(r.byKind) {
		r.global = append(r.global, d)
		return
	}
	r.byKind[k] = append(r.byKind[k], d)
}

// Remove uninstalls the first detector with the given name, searching
// the global set first, then the media buckets in Kind order. It
// reports whether one was found.
func (r *Registry) Remove(name string) bool {
	if removeNamed(&r.global, name) {
		return true
	}
	for k := range r.byKind {
		if removeNamed(&r.byKind[k], name) {
			return true
		}
	}
	return false
}

func removeNamed(ds *[]Detector, name string) bool {
	for i, d := range *ds {
		if d.Name() == name {
			*ds = append((*ds)[:i], (*ds)[i+1:]...)
			return true
		}
	}
	return false
}

// Names lists the installed detector names in routing order: the
// global set, then each medium bucket in Kind order.
func (r *Registry) Names() []string {
	out := make([]string, 0, r.Len())
	for _, d := range r.global {
		out = append(out, d.Name())
	}
	for k := range r.byKind {
		for _, d := range r.byKind[k] {
			out = append(out, d.Name())
		}
	}
	return out
}

// Len reports the installed detector count.
func (r *Registry) Len() int {
	n := len(r.global)
	for k := range r.byKind {
		n += len(r.byKind[k])
	}
	return n
}

// Train trains every installed detector on the clean reference trace,
// in routing order.
func (r *Registry) Train(trace *netif.Trace) {
	for _, d := range r.global {
		d.Train(trace)
	}
	for k := range r.byKind {
		for _, d := range r.byKind[k] {
			d.Train(trace)
		}
	}
}

// Clear empties the registry, nilling slots so detector state is
// collectable, and keeps the backing arrays for reuse.
func (r *Registry) Clear() {
	for i := range r.global {
		r.global[i] = nil
	}
	r.global = r.global[:0]
	for k := range r.byKind {
		for i := range r.byKind[k] {
			r.byKind[k][i] = nil
		}
		r.byKind[k] = r.byKind[k][:0]
	}
}

// Suite is an ordered list of detector constructors. Detectors are
// stateful, so pooled vehicles rebuild their detection plane from the
// suite on every Reset — same constructors, same order, byte-identical
// routing and alert merge order as a fresh build.
type Suite []func() Detector

// Build constructs one fresh detector instance per entry, in order.
func (s Suite) Build() []Detector {
	out := make([]Detector, 0, len(s))
	for _, f := range s {
		out = append(out, f())
	}
	return out
}

// BaselineSuite is the historical medium-agnostic detector trio: the
// statistical models that watch every medium through the same
// (medium, identifier) keys.
func BaselineSuite() Suite {
	return Suite{
		func() Detector { return NewFrequencyDetector() },
		func() Detector { return NewIntervalDetector() },
		func() Detector { return NewSpecDetector() },
	}
}

// MediumAwareSuite is the baseline trio plus the four per-medium
// semantic families: FlexRay slot ownership, LIN schedule conformance,
// Ethernet address anomalies and SOME/IP service misuse.
func MediumAwareSuite() Suite {
	return append(BaselineSuite(),
		func() Detector { return NewFlexRaySlotDetector() },
		func() Detector { return NewLINScheduleDetector() },
		func() Detector { return NewEthernetAddrDetector() },
		func() Detector { return NewSOMEIPDetector() },
	)
}
