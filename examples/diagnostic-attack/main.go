// Diagnostic attack: the entry vector behind the paper's remote
// exploitation references [15, 16], played out on the composed vehicle.
// A workshop tester unlocks an ECU with the legacy XOR seed/key scheme
// while an attacker sniffs the diagnostic bus; the attacker derives the
// algorithm constant offline and unlocks a *different* vehicle of the
// same model line, rewriting its calibration data. The same chain is then
// attempted against a vehicle whose SecurityAccess runs SHE-backed CMAC
// — and dies at the seed/key step.
//
//	go run ./examples/diagnostic-attack
package main

import (
	"fmt"
	"log"

	"autosec/internal/can"
	"autosec/internal/core"
	"autosec/internal/she"
	"autosec/internal/sim"
	"autosec/internal/uds"
)

func main() {
	weak := uds.WeakXOR{Constant: 0x5EC0DE42}

	fmt.Println("== phase 1: the workshop, with an attacker on the bus ==")
	shopCar, err := core.NewVehicle(core.Config{VIN: "WAUTOSEC-SHOP", Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	diag := shopCar.AttachDiagnostics(core.DomainInfotainment, weak)

	var seed, key []byte
	shopCar.Buses[core.DomainInfotainment].Sniff(func(_ sim.Time, f *can.Frame, _ *can.Controller, _ bool) {
		if len(f.Data) >= 7 && f.Data[1] == 0x67 && f.Data[2] == 0x01 {
			seed = append([]byte(nil), f.Data[3:7]...)
		}
		if len(f.Data) >= 7 && f.Data[1] == 0x27 && f.Data[2] == 0x02 {
			key = append([]byte(nil), f.Data[3:7]...)
		}
	})

	if _, err := shopCar.RunDiag(diag.Tester, []byte{uds.SvcSessionControl, uds.SessionExtended}); err != nil {
		log.Fatal(err)
	}
	if err := shopCar.RunUnlock(diag.Tester, 1, weak); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workshop tester unlocked level 1 (algorithm: %s)\n", weak.Name())
	fmt.Printf("attacker sniffed: seed=%x key=%x\n", seed, key)

	// Offline derivation.
	var c uint32
	for i := 0; i < 4; i++ {
		c = c<<8 | uint32(seed[i]^key[i])
	}
	recovered := uds.WeakXOR{Constant: c - 1} // subtract the level offset
	fmt.Printf("derived constant: %#08x (actual %#08x)\n\n", recovered.Constant, weak.Constant)

	fmt.Println("== phase 2: a parked vehicle of the same model line ==")
	victim, err := core.NewVehicle(core.Config{VIN: "WAUTOSEC-VICTIM", Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	vDiag := victim.AttachDiagnostics(core.DomainInfotainment, weak)
	intruder := victim.NewIntruderTester(core.DomainInfotainment)
	if _, err := victim.RunDiag(intruder, []byte{uds.SvcSessionControl, uds.SessionExtended}); err != nil {
		log.Fatal(err)
	}
	if err := victim.RunUnlock(intruder, 1, recovered); err != nil {
		log.Fatalf("unlock with derived constant failed: %v", err)
	}
	fmt.Println("intruder unlocked the victim with the derived constant")
	// Rewrite the calibration DID.
	resp, err := victim.RunDiag(intruder, []byte{uds.SvcWriteDataByID, 0xC1, 0x00, 0xDE, 0xAD})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := uds.ParseResponse(uds.SvcWriteDataByID, resp); err != nil {
		log.Fatalf("calibration write: %v", err)
	}
	fmt.Printf("calibration rewritten to % X — vehicle integrity gone\n\n", vDiag.Server.Data(uds.DIDCalibration))

	fmt.Println("== phase 3: the same chain against SHE-backed SecurityAccess ==")
	hardened, err := core.NewVehicle(core.Config{VIN: "WAUTOSEC-HARD", Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	var k16 [16]byte
	copy(k16[:], "per-vehicle-diag")
	if err := hardened.SHE.ProvisionKey(she.Key4, k16, she.Flags{KeyUsage: true}); err != nil {
		log.Fatal(err)
	}
	alg := uds.SHECMAC{Engine: hardened.SHE, Slot: she.Key4}
	_ = hardened.AttachDiagnostics(core.DomainInfotainment, alg)
	intruder2 := hardened.NewIntruderTester(core.DomainInfotainment)
	if _, err := hardened.RunDiag(intruder2, []byte{uds.SvcSessionControl, uds.SessionExtended}); err != nil {
		log.Fatal(err)
	}
	// The attacker has no CMAC key; any derived-constant guess is wrong.
	err = hardened.RunUnlock(intruder2, 1, recovered)
	fmt.Printf("intruder vs SHE-CMAC: %v\n", err)
	fmt.Println("\n(lesson per the paper's Secure Processing layer: diagnostic")
	fmt.Println(" authentication must anchor in per-vehicle hardware keys, not in a")
	fmt.Println(" model-wide algorithm secret)")
}
