package experiments

import (
	"fmt"

	"autosec/internal/core"
	"autosec/internal/ethernet"
	"autosec/internal/flexray"
	"autosec/internal/lin"
	"autosec/internal/netif"
	"autosec/internal/sim"
	"autosec/internal/someip"
)

// E21 pits the baseline statistical detector trio (frequency, interval,
// spec) against the medium-aware registry suite on four attacks, one per
// non-CAN medium, each tuned to be statistically invisible: it preserves
// every identifier's rate, inter-arrival spacing and payload length, and
// violates only the medium's native contract (TDMA slot ownership, the
// LIN schedule table, the switch's station population, the SOME/IP
// subscription state). The baseline detectors are honestly blind — the
// injections sit at exactly half the learned period, the masquerade
// reuses the victim's own slot timing — so detection separates cleanly
// on semantics, not tuning slack.
//
// Scenario timeline (identical clean traffic in every row):
//
//	[0, 2s)  a capture vehicle records clean traffic on the three extra
//	         domains; the measurement vehicle trains on that capture
//	[0, 4s)  clean window in the measurement run (false-alert budget)
//	[4s, 6s) attack window; the attack runs to the end of the run
//
// The clean traffic deliberately includes a SOME/IP discovery burst
// (offer/find/subscribe/call) in [0, 1.2s]: bursty service-oriented
// exchanges on one EtherType are exactly what the CAN-era interval
// model cannot describe, so both suites log the same handful of
// interval false alerts there — the medium-aware suite adds detection
// without adding false alerts.
//
// The vehicle is a 2-zone per-zone-kernel build, so the golden table
// also pins worker-count invariance of the detection plane (benchreport
// -kernelpar reruns it at higher parallelism and byte-diffs).
func E21MediumIDS(seed uint64) *Table {
	return E21MediumIDSWith(seed, 1)
}

// e21Attack labels one attack scenario and installs its events on the
// measurement vehicle. Install is called after the clean scripts, with
// every attack event at or after e21AttackStart.
type e21Attack struct {
	name    string
	install func(v *core.Vehicle, s *e21Scenario)
}

const (
	e21CaptureEnd  = 2 * sim.Second
	e21AttackStart = 4 * sim.Second
	e21RunEnd      = 6 * sim.Second
)

// e21Scenario carries the handles the clean scripts create that the
// attack installers need (victim slot, attacker stations, service MACs).
type e21Scenario struct {
	frOwnerSilent *bool          // set true when the masqueraded owner must yield its slot
	ghost         *ethernet.Host // wired but silent station for the spoofing row
	display       *ethernet.Host // known station that sources the spoofed notifications
	cameraMAC     ethernet.MAC   // SOME/IP server station
}

// E21MediumIDSWith runs the comparison at the given worker count. The
// golden table uses workers=1; any other value must reproduce it byte
// for byte.
func E21MediumIDSWith(seed uint64, workers int) *Table {
	t := &Table{
		ID:    "E21",
		Title: "Medium-aware IDS vs statistical baseline on per-medium attacks (§5, §7)",
		Claim: "per-medium semantic models catch slot masquerade, schedule deviation, station spoofing and service misuse that rate/interval/DLC statistics provably cannot see; the registry adds them without new false alerts",
		Columns: []string{"attack", "suite", "records", "detected", "ttd (us)",
			"alerts in window", "false alerts", "first detector"},
	}
	attacks := []e21Attack{
		{name: "flexray slot masquerade", install: e21InstallFlexRayMasquerade},
		{name: "lin mid-period injection", install: e21InstallLINInjection},
		{name: "ethernet unknown station", install: e21InstallEthernetGhost},
		{name: "someip spoofed notify", install: e21InstallSOMEIPSpoof},
	}
	for _, atk := range attacks {
		for _, aware := range []bool{false, true} {
			suite := "baseline"
			if aware {
				suite = "medium-aware"
			}

			// Capture run: same build, same seed, clean scripts only.
			// The recorder taps feed the measurement vehicle's training.
			cap, capScn := e21BuildVehicle(seed, aware)
			_ = capScn
			frTr := netif.Recorder(cap.Media["frchassis"])
			linTr := netif.Recorder(cap.Media["cabin"])
			ethTr := netif.Recorder(cap.Media["telematics"])
			cap.SetParallelism(workers)
			if err := cap.RunUntil(e21CaptureEnd); err != nil {
				panic(err)
			}
			train := &netif.Trace{}
			train.Records = append(train.Records, frTr.Records...)
			train.Records = append(train.Records, linTr.Records...)
			train.Records = append(train.Records, ethTr.Records...)

			// Measurement run: train before any traffic, then replay the
			// same clean scripts with the attack layered on top.
			v, scn := e21BuildVehicle(seed, aware)
			v.TrainIDS(train)
			atk.install(v, scn)
			v.SetParallelism(workers)
			if err := v.RunUntil(e21RunEnd); err != nil {
				panic(err)
			}

			inWindow, falseAlerts := 0, 0
			var firstAt sim.Time
			firstDet := "-"
			for _, a := range v.IDS.Alerts {
				if a.At < e21AttackStart {
					falseAlerts++
					continue
				}
				inWindow++
				if firstDet == "-" {
					firstAt, firstDet = a.At, a.Detector
				}
			}
			detected, ttd := "no", "-"
			if inWindow > 0 {
				detected = "yes"
				ttd = fmt.Sprintf("%.1f", (firstAt - e21AttackStart).Micros())
			}
			t.AddRow(atk.name, suite, v.IDS.Observed(), detected, ttd,
				inWindow, falseAlerts, firstDet)
		}
	}
	return t
}

// e21BuildVehicle constructs the 2-zone vehicle with one extra domain
// per non-CAN medium and installs the clean traffic scripts. The
// standard CAN domains stay silent so the table isolates the non-CAN
// story. All three extras shard into zone 0, so every scripted event
// lives on one member kernel and the timeline is worker-invariant.
func e21BuildVehicle(seed uint64, mediumAware bool) (*core.Vehicle, *e21Scenario) {
	v, err := core.NewVehicle(core.Config{
		VIN:  "E21",
		Seed: seed,
		ExtraDomains: []core.DomainSpec{
			{Name: "frchassis", Kind: netif.FlexRay},
			{Name: "cabin", Kind: netif.LIN},
			{Name: "telematics", Kind: netif.Ethernet},
		},
		Zonal: &core.ZonalConfig{Zones: 2, PerZoneKernels: true},
		IDS:   &core.IDSConfig{MediumAware: mediumAware},
	})
	if err != nil {
		panic(err)
	}
	scn := &e21Scenario{}

	// FlexRay: three owned static slots publishing every 5ms cycle, plus
	// a periodic dynamic-segment diagnostic burst. The slot-9 owner
	// yields (publishes nil) once the masquerade begins — the compromised
	// node is held in reset while the intruder speaks in its slot.
	frK := v.KernelFor("frchassis")
	fr := v.FlexRayClusters["frchassis"]
	silent := false
	scn.frOwnerSilent = &silent
	counter := func(tag byte) flexray.PublishFunc {
		return func(cycle int) []byte {
			return []byte{tag, byte(cycle >> 8), byte(cycle), 0, 0, 0, 0, tag}
		}
	}
	must(fr.AssignStatic(5, "brake-ecu", counter(0x05)))
	must(fr.AssignStatic(9, "steer-ecu", func(cycle int) []byte {
		if silent {
			return nil
		}
		return counter(0x09)(cycle)
	}))
	must(fr.AssignStatic(12, "susp-ecu", counter(0x0C)))
	frK.Every(2*sim.Millisecond, 35*sim.Millisecond, func() {
		_ = fr.SendDynamic(70, "diag-unit", []byte{0x46, 0x00, 0x00, 0x00, 0x00, 0x46})
	})
	must(fr.Start())

	// LIN: a four-entry schedule table at 10ms per slot (40ms round),
	// every response 2 bytes so the injected frame matches the DLC spec.
	cl := v.LINClusters["cabin"]
	resp := func(b byte) lin.PublishFunc {
		return func(at sim.Time) []byte { return []byte{b, b ^ 0xFF} }
	}
	door := lin.NewSlave("door")
	must(door.Publish(0x10, resp(0x10)))
	must(door.Publish(0x11, resp(0x11)))
	mirror := lin.NewSlave("mirror")
	must(mirror.Publish(0x21, resp(0x21)))
	seat := lin.NewSlave("seat")
	must(seat.Publish(0x30, resp(0x30)))
	cl.AddSlave(door)
	cl.AddSlave(mirror)
	cl.AddSlave(seat)
	cl.SetSchedule([]lin.ScheduleEntry{
		{ID: 0x10, Delay: 10 * sim.Millisecond},
		{ID: 0x11, Delay: 10 * sim.Millisecond},
		{ID: 0x21, Delay: 10 * sim.Millisecond},
		{ID: 0x30, Delay: 10 * sim.Millisecond},
	})
	must(cl.Start())

	// Ethernet: a sensor streaming to a logger at 10ms, the logger
	// heartbeating back at 250ms. The logger speaks first so the switch
	// learns its MAC and the sensor stream stays unicast. The ghost
	// station is wired but silent until its attack row.
	ethK := v.KernelFor("telematics")
	sw := v.Switches["telematics"]
	sensor := ethernet.NewHost("sensor", ethernet.LocalMAC(0x51))
	logger := ethernet.NewHost("logger", ethernet.LocalMAC(0x52))
	ghost := ethernet.NewHost("ghost", ethernet.LocalMAC(0x99))
	sw.Connect(sensor, 1)
	sw.Connect(logger, 1)
	sw.Connect(ghost, 1)
	scn.ghost = ghost
	ethK.Every(3*sim.Millisecond, 250*sim.Millisecond, func() {
		_ = logger.Send(ethernet.Frame{Dst: ethernet.LocalMAC(0x51), EtherType: 0x88B7,
			Payload: []byte{0x4C, 0x4F, 0x47, 0x00, 0x00, 0x00, 0x00, 0x01}})
	})
	ethK.Every(5*sim.Millisecond, 10*sim.Millisecond, func() {
		_ = sensor.Send(ethernet.Frame{Dst: ethernet.LocalMAC(0x52), EtherType: 0x88B6,
			Payload: []byte{0x53, 0x45, 0x4E, 0x00, 0x00, 0x00, 0x00, 0x02}})
	})

	// SOME/IP on the same switch: camera offers service 0x1234, display
	// subscribes to eventgroup 0x20 and makes three calls, then the
	// discovery churn stops and the steady state is a notification every
	// 40ms. Confining discovery to [0, 1.2s] keeps the steady-state
	// timeline exactly periodic through the attack window.
	camera := ethernet.NewHost("camera", ethernet.LocalMAC(0x61))
	display := ethernet.NewHost("display", ethernet.LocalMAC(0x62))
	sw.Connect(camera, 1)
	sw.Connect(display, 1)
	scn.display = display
	scn.cameraMAC = ethernet.LocalMAC(0x61)
	srv := someip.NewServer(ethK, camera, 0x1234)
	srv.Handle(0x01, func(p []byte) ([]byte, byte) {
		return []byte{0x4F, 0x4B, 0x00, 0x00}, someip.ReturnOK
	})
	cli := someip.NewClient(display, 7)
	cli.OnOffer(func(service uint16) {
		if service == 0x1234 {
			_ = cli.Subscribe(0x1234, 0x20)
		}
	})
	stopOffer := srv.StartOffering(500 * sim.Millisecond)
	ethK.At(1200*sim.Millisecond, stopOffer)
	ethK.At(10*sim.Millisecond, func() { _ = cli.Find(0x1234) })
	for _, at := range []sim.Time{300 * sim.Millisecond, 600 * sim.Millisecond, 900 * sim.Millisecond} {
		ethK.At(at, func() {
			_ = cli.Call(0x1234, 0x01, []byte{0x52, 0x45, 0x51, 0x00}, func(*someip.Message) {})
		})
	}
	ethK.Every(1020*sim.Millisecond, 40*sim.Millisecond, func() {
		srv.Notify(0x20, []byte{0x43, 0x41, 0x4D, 0x00})
	})

	return v, scn
}

// e21InstallFlexRayMasquerade: from t=4s the slot-9 owner is silenced
// and an intruder transmits in its slot with the victim's exact timing
// and payload size — zero statistical footprint, but the wrong sender
// in an owned TDMA slot. Intrude registers at 4s sharp (an intruder
// wired earlier would collide with the still-talking owner).
func e21InstallFlexRayMasquerade(v *core.Vehicle, s *e21Scenario) {
	frK := v.KernelFor("frchassis")
	fr := v.FlexRayClusters["frchassis"]
	frK.At(e21AttackStart, func() {
		*s.frOwnerSilent = true
		_ = fr.Intrude(9, "rogue-tcu", func(cycle int) []byte {
			return []byte{0xBA, byte(cycle >> 8), byte(cycle), 0, 0, 0, 0, 0xBA}
		})
	})
}

// e21InstallLINInjection: a sporadic master frame reusing scheduled ID
// 0x21, fired exactly between its scheduled occurrences (0x21 polls at
// 20ms within each 40ms round; the injection lands on the round
// boundary), so the inter-arrival gap is exactly half the learned
// period on both sides — invisible to the strict-< interval check and,
// at one frame per 120ms, inside the frequency band. Only the schedule
// model sees the successor-pair violation.
func e21InstallLINInjection(v *core.Vehicle, s *e21Scenario) {
	linK := v.KernelFor("cabin")
	cl := v.LINClusters["cabin"]
	linK.Every(e21AttackStart, 120*sim.Millisecond, func() {
		_ = cl.SendSporadic("rogue-node", 0x21, []byte{0x21, 0xDE})
	})
}

// e21InstallEthernetGhost: the pre-wired ghost station starts sending
// the sensor's traffic class with matching payload length, phased 5ms
// off the sensor's 10ms grid (again exactly half the learned period)
// and inside the learned rate band. Only the station-population model
// flags the unknown source MAC.
func e21InstallEthernetGhost(v *core.Vehicle, s *e21Scenario) {
	ethK := v.KernelFor("telematics")
	// The sensor grid sits at t = 5ms (mod 10ms); starting on the round
	// 10ms boundary puts every ghost frame exactly 5ms — half the
	// learned period — from its legitimate neighbours on both sides.
	ethK.Every(e21AttackStart+10*sim.Millisecond, 30*sim.Millisecond, func() {
		_ = s.ghost.Send(ethernet.Frame{Dst: ethernet.LocalMAC(0x52), EtherType: 0x88B6,
			Payload: []byte{0x47, 0x48, 0x4F, 0x00, 0x00, 0x00, 0x00, 0x03}})
	})
}

// e21InstallSOMEIPSpoof: the display station — a known MAC with a
// learned binding to the SOME/IP EtherType — publishes notifications
// for eventgroup 0x21, which nothing ever subscribed to. Frames are
// timed exactly between the legitimate 40ms notifications (20ms off
// grid) with identical wire size, so rate, interval and DLC all stay
// in band; only the subscription-state model alerts.
func e21InstallSOMEIPSpoof(v *core.Vehicle, s *e21Scenario) {
	ethK := v.KernelFor("telematics")
	spoof := (&someip.Message{ServiceID: 0x1234, MethodID: 0x21,
		Type: someip.TypeNotification, Payload: []byte{0xDE, 0xAD, 0xBE, 0xEF}}).Encode()
	ethK.Every(e21AttackStart, 120*sim.Millisecond, func() {
		_ = s.display.Send(ethernet.Frame{Dst: s.cameraMAC,
			EtherType: someip.EtherTypeSOMEIP, Payload: spoof})
	})
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
