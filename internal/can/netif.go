package can

import (
	"fmt"

	"autosec/internal/netif"
	"autosec/internal/sim"
)

// This file adapts the CAN bus to the netif transport fabric. The adapter
// direction is one-way by design: can imports netif, never the reverse.

// FrameToNetif fills out with the fabric view of f. The payload aliases
// f.Data (zero-copy); out is only as durable as f.
func FrameToNetif(f *Frame, sender string, out *netif.Frame) {
	var flags uint16
	if f.Extended {
		flags |= netif.FlagExtended
	}
	if f.Remote {
		flags |= netif.FlagRemote
	}
	if f.FD {
		flags |= netif.FlagFD
	}
	if f.BRS {
		flags |= netif.FlagBRS
	}
	*out = netif.Frame{
		Medium:   netif.CAN,
		ID:       uint32(f.ID),
		Flags:    flags,
		Priority: uint32(f.ID),
		Sender:   sender,
		Payload:  f.Data,
	}
}

// FrameFromNetif converts a fabric frame back to a native CAN frame. The
// payload is aliased, not copied (Controller.Send clones on enqueue).
func FrameFromNetif(nf *netif.Frame) (Frame, error) {
	if nf.Medium != netif.CAN {
		return Frame{}, fmt.Errorf("can: cannot convert %s frame", nf.Medium)
	}
	f := Frame{
		ID:       ID(nf.ID),
		Extended: nf.Flags&netif.FlagExtended != 0,
		Remote:   nf.Flags&netif.FlagRemote != 0,
		FD:       nf.Flags&netif.FlagFD != 0,
		BRS:      nf.Flags&netif.FlagBRS != 0,
		Data:     nf.Payload,
	}
	if err := f.Validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// netifMedium adapts a Bus to netif.Medium.
type netifMedium struct {
	bus *Bus
	// tapScratch is reused across tap callbacks so the per-frame conversion
	// allocates nothing; taps run synchronously and must clone to retain.
	tapScratch netif.Frame
}

// Netif returns the fabric view of the bus: ports are CAN controllers,
// taps are sniffers.
func Netif(b *Bus) netif.Medium { return &netifMedium{bus: b} }

func (m *netifMedium) Kind() netif.Kind { return netif.CAN }
func (m *netifMedium) Name() string     { return m.bus.Name }

func (m *netifMedium) Open(name string) (netif.Port, error) {
	c := NewController(name)
	m.bus.Attach(c)
	return &netifPort{ctrl: c}, nil
}

func (m *netifMedium) Tap(fn netif.TapFunc) {
	m.bus.Sniff(func(at sim.Time, f *Frame, sender *Controller, corrupted bool) {
		name := ""
		if sender != nil {
			name = sender.Name
		}
		FrameToNetif(f, name, &m.tapScratch)
		fn(at, &m.tapScratch, corrupted)
	})
}

// netifPort adapts a Controller to netif.Port.
type netifPort struct {
	ctrl        *Controller
	recvScratch netif.Frame
}

func (p *netifPort) Name() string     { return p.ctrl.Name }
func (p *netifPort) Kind() netif.Kind { return netif.CAN }

func (p *netifPort) Send(f *netif.Frame) error {
	nf, err := FrameFromNetif(f)
	if err != nil {
		return err
	}
	return p.ctrl.Send(nf, nil)
}

func (p *netifPort) OnReceive(fn netif.RecvFunc) {
	p.ctrl.OnReceive(func(at sim.Time, f *Frame, sender *Controller) {
		name := ""
		if sender != nil {
			name = sender.Name
		}
		FrameToNetif(f, name, &p.recvScratch)
		fn(at, &p.recvScratch)
	})
}

// Netif converts the CAN trace into the medium-agnostic trace format the
// detectors consume. Records share payload storage with the source trace
// (both are immutable captures), so conversion is O(n) with one slice
// allocation.
func (t *Trace) Netif() *netif.Trace {
	out := &netif.Trace{Records: make([]netif.Record, len(t.Records))}
	for i := range t.Records {
		r := &t.Records[i]
		nr := &out.Records[i]
		nr.At = r.At
		nr.Corrupted = r.Corrupted
		FrameToNetif(&r.Frame, r.Sender, &nr.Frame)
	}
	return out
}
