package ota

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestSplitAssembleRoundTrip(t *testing.T) {
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	m, chunks, err := Split("fw", payload, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 16 { // 15*64=960 + 40
		t.Fatalf("chunks=%d", len(chunks))
	}
	a := NewAssembler(m)
	// Deliver out of order.
	for i := len(chunks) - 1; i >= 0; i-- {
		if !a.Add(chunks[i]) {
			t.Fatalf("chunk %d rejected", i)
		}
	}
	if !a.Complete() {
		t.Fatal("not complete")
	}
	got, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
}

func TestAssemblerRejectsCorruptChunk(t *testing.T) {
	m, chunks, _ := Split("fw", []byte("hello world, this is firmware"), 8)
	a := NewAssembler(m)
	bad := chunks[1]
	bad.Data = append([]byte(nil), bad.Data...)
	bad.Data[0] ^= 1
	if a.Add(bad) {
		t.Fatal("corrupt chunk accepted")
	}
	if a.BadChunks != 1 {
		t.Fatalf("BadChunks=%d", a.BadChunks)
	}
	// The slot is still missing; the original fills it.
	if len(a.Missing()) != len(chunks) {
		t.Fatal("missing count wrong")
	}
	if !a.Add(chunks[1]) {
		t.Fatal("legit chunk rejected")
	}
}

func TestAssemblerRejectsForeignAndOutOfRange(t *testing.T) {
	m, chunks, _ := Split("fw", []byte("0123456789abcdef"), 4)
	a := NewAssembler(m)
	wrongName := chunks[0]
	wrongName.Name = "other"
	if a.Add(wrongName) {
		t.Fatal("foreign chunk accepted")
	}
	oob := chunks[0]
	oob.Index = 99
	if a.Add(oob) {
		t.Fatal("out-of-range chunk accepted")
	}
}

func TestAssemblerIncomplete(t *testing.T) {
	m, chunks, _ := Split("fw", []byte("0123456789abcdef"), 4)
	a := NewAssembler(m)
	a.Add(chunks[0])
	a.Add(chunks[2])
	if a.Complete() {
		t.Fatal("incomplete assembler claims complete")
	}
	missing := a.Missing()
	if len(missing) != 2 || missing[0] != 1 || missing[1] != 3 {
		t.Fatalf("missing=%v", missing)
	}
	if _, err := a.Assemble(); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err=%v", err)
	}
}

func TestAssemblerDuplicateIdempotent(t *testing.T) {
	m, chunks, _ := Split("fw", []byte("01234567"), 4)
	a := NewAssembler(m)
	a.Add(chunks[0])
	a.Add(chunks[0])
	if a.Complete() {
		t.Fatal("duplicates counted twice")
	}
	a.Add(chunks[1])
	if !a.Complete() {
		t.Fatal("should be complete")
	}
}

func TestSplitValidation(t *testing.T) {
	if _, _, err := Split("fw", []byte("x"), 0); err == nil {
		t.Fatal("zero chunk size accepted")
	}
}

// Property: split/assemble round-trips any payload at any chunk size.
func TestSplitAssembleProperty(t *testing.T) {
	f := func(payload []byte, size uint8) bool {
		cs := int(size%128) + 1
		m, chunks, err := Split("p", payload, cs)
		if err != nil {
			return false
		}
		a := NewAssembler(m)
		for _, c := range chunks {
			if !a.Add(c) {
				return false
			}
		}
		got, err := a.Assemble()
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitEmptyPayload(t *testing.T) {
	m, chunks, err := Split("empty", nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 0 {
		t.Fatalf("chunks=%d", len(chunks))
	}
	a := NewAssembler(m)
	if !a.Complete() {
		t.Fatal("empty payload not complete")
	}
	got, err := a.Assemble()
	if err != nil || len(got) != 0 {
		t.Fatalf("assemble: %v %v", got, err)
	}
}
