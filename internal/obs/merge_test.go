package obs

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"autosec/internal/sim"
)

// sample values below are integers (or quarters) small enough that every
// partial float64 sum is exact, so addition is associative and the
// sharded/unsharded comparisons can demand byte-identical snapshots.

func TestHistogramObserveNegativeMaxRegression(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x/neg", []float64{-10, 0, 10})
	for _, v := range []float64{-25, -7, -1} {
		h.Observe(v)
	}
	if got := h.Max(); got != -1 {
		t.Fatalf("all-negative max=%v, want -1 (zero-initialized max leaked)", got)
	}
	// Max must also survive a merge into an empty histogram.
	dst := NewRegistry().Histogram("x/neg", []float64{-10, 0, 10})
	if err := dst.Merge(h); err != nil {
		t.Fatal(err)
	}
	if got := dst.Max(); got != -1 {
		t.Fatalf("merged all-negative max=%v, want -1", got)
	}
}

func TestNilMergesAreNoOps(t *testing.T) {
	var c *Counter
	c.Merge(&Counter{v: 3})
	NewRegistry().Counter("a").Merge(nil)
	var g *Gauge
	g.Merge(&Gauge{v: 1})
	NewRegistry().Gauge("a").Merge(nil)
	var h *Histogram
	if err := h.Merge(&Histogram{}); err != nil {
		t.Fatal(err)
	}
	if err := NewRegistry().Histogram("a", nil).Merge(nil); err != nil {
		t.Fatal(err)
	}
	var r *Registry
	if err := r.Merge(NewRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := NewRegistry().Merge(nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeBoundsMismatch(t *testing.T) {
	a := NewRegistry().Histogram("h", []float64{1, 2, 3})
	b := NewRegistry().Histogram("h", []float64{1, 2, 4})
	b.Observe(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging histograms with different bounds must error")
	}
	c := NewRegistry().Histogram("h", []float64{1, 2})
	c.Observe(1)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging histograms with different bound counts must error")
	}
	// Registry-level merge surfaces the key.
	ra, rb := NewRegistry(), NewRegistry()
	ra.Histogram("sub/lat", []float64{1})
	rb.Histogram("sub/lat", []float64{2}).Observe(1)
	if err := ra.Merge(rb); err == nil {
		t.Fatal("registry merge must propagate bound mismatch")
	}
}

// TestHistogramMergeEqualsConcatenated is the tentpole property test:
// merging shard histograms must equal one histogram fed the concatenated
// sample stream — exactly, field for field.
func TestHistogramMergeEqualsConcatenated(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		bounds := []float64{-50, 0, 25, 100, 400}
		n := 1 + rng.Intn(200)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = float64(rng.Intn(1200)-300) * 0.25
		}
		whole := NewRegistry().Histogram("h", bounds)
		for _, v := range samples {
			whole.Observe(v)
		}
		// Random contiguous partition into 1..6 shards.
		merged := NewRegistry().Histogram("h", bounds)
		lo := 0
		for lo < n {
			hi := lo + 1 + rng.Intn(n-lo)
			shard := NewRegistry().Histogram("h", bounds)
			for _, v := range samples[lo:hi] {
				shard.Observe(v)
			}
			if err := merged.Merge(shard); err != nil {
				t.Fatal(err)
			}
			lo = hi
		}
		if merged.count != whole.count || merged.sum != whole.sum || merged.max != whole.max {
			t.Fatalf("trial %d: merged {count:%d sum:%v max:%v} != whole {count:%d sum:%v max:%v}",
				trial, merged.count, merged.sum, merged.max, whole.count, whole.sum, whole.max)
		}
		if !reflect.DeepEqual(merged.counts, whole.counts) {
			t.Fatalf("trial %d: bucket counts diverge: %v vs %v", trial, merged.counts, whole.counts)
		}
	}
}

// TestRegistryMergeShardPartitionByteIdentical pins the satellite
// contract: folding randomly partitioned shard registries in order is
// snapshot-for-snapshot identical to the unsharded registry.
func TestRegistryMergeShardPartitionByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	type event struct {
		c int64
		g float64
		h float64
		p float64
	}
	for trial := 0; trial < 20; trial++ {
		n := 16 + rng.Intn(64)
		events := make([]event, n)
		for i := range events {
			events[i] = event{
				c: int64(rng.Intn(9)),
				g: float64(rng.Intn(40)) * 0.25,
				h: float64(rng.Intn(500)),
				p: float64(rng.Intn(100)),
			}
		}
		apply := func(r *Registry, evs []event) float64 {
			var probeTotal float64
			for _, e := range evs {
				r.Counter("can/frames").Add(e.c)
				r.Gauge("can/load").Add(e.g)
				r.Histogram("can/frame_us", []float64{50, 200, 450}).Observe(e.h)
				probeTotal += e.p
			}
			return probeTotal
		}

		unsharded := NewRegistry()
		total := apply(unsharded, events)
		unsharded.Probe("bus/deliveries", func() float64 { return total })

		fleet := NewRegistry()
		lo := 0
		for lo < n {
			hi := lo + 1 + rng.Intn(n-lo)
			shard := NewRegistry()
			sub := apply(shard, events[lo:hi])
			shard.Probe("bus/deliveries", func() float64 { return sub })
			if err := fleet.Merge(shard); err != nil {
				t.Fatal(err)
			}
			lo = hi
		}

		a, b := unsharded.Snapshot(), fleet.Snapshot()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: sharded snapshot diverges:\nunsharded: %+v\nmerged:    %+v", trial, a, b)
		}
	}
}

func TestMaterializeFreezesProbeReadings(t *testing.T) {
	live := 7.0
	r := NewRegistry()
	r.Probe("zone/frames", func() float64 { return live })
	r.Materialize()
	live = 99 // simulate the pooled vehicle being reset and reused

	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Key != "zone/frames" || snap[0].Kind != "probe" || snap[0].Value != 7 {
		t.Fatalf("materialized snapshot = %+v, want frozen zone/frames=7", snap)
	}

	// Merge must consume the frozen reading, not the live closure.
	fleet := NewRegistry()
	if err := fleet.Merge(r); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Merge(r); err != nil {
		t.Fatal(err)
	}
	snap = fleet.Snapshot()
	if len(snap) != 1 || snap[0].Value != 14 {
		t.Fatalf("merged frozen probes = %+v, want zone/frames=14", snap)
	}

	// Re-materializing re-reads the live probe.
	r.Materialize()
	if got := r.Snapshot()[0].Value; got != 99 {
		t.Fatalf("re-materialized value = %v, want 99", got)
	}

	var nilReg *Registry
	nilReg.Materialize() // must not panic
}

// TestRegistryMergeSteadyStateAllocs pins the merge hot path at zero
// allocations once the destination holds the union of keys — the
// property TestFleetMergeSteadyStateAllocs relies on at fleet scale.
func TestRegistryMergeSteadyStateAllocs(t *testing.T) {
	mkShard := func() *Registry {
		r := NewRegistry()
		r.Counter("can/frames").Add(3)
		r.Gauge("can/load").Add(0.5)
		r.Histogram("can/frame_us", nil).Observe(125)
		r.Probe("bus/deliveries", func() float64 { return 2 })
		r.Materialize()
		return r
	}
	shard := mkShard()
	fleet := NewRegistry()
	if err := fleet.Merge(shard); err != nil { // warm-up creates the keys
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := fleet.Merge(shard); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("registry merge steady state allocates %v allocs/op, want 0", allocs)
	}
}

// TestTracerResetAllByteDeterministic pins the recycling contract: a
// tracer that captured an unrelated workload, then ResetAll, must export
// byte-identical Chrome JSON to a fresh tracer fed the same events —
// label ids (the exported tids) must not leak across captures.
func TestTracerResetAllByteDeterministic(t *testing.T) {
	capture := func(tr *Tracer) {
		can := tr.Label("can")
		tx := tr.Label("tx")
		bus := tr.Label("powertrain")
		tr.KernelDispatch(500, 2)
		tr.Span(1000, 125_000, can, tx, bus, 0x100, 125)
		tr.Instant(2000, can, tx, bus, 0x200, 0)
	}
	fresh := NewTracer(64)
	capture(fresh)
	var want bytes.Buffer
	if err := fresh.WriteChromeTrace(&want); err != nil {
		t.Fatal(err)
	}

	recycled := NewTracer(64)
	// Unrelated first capture warms the label table differently.
	gw := recycled.Label("gateway")
	ids := recycled.Label("ids")
	recycled.Instant(1, gw, ids, recycled.Label("deny"), 9, 9)
	recycled.ResetAll()

	if recycled.Total() != 0 || recycled.Len() != 0 {
		t.Fatal("ResetAll must discard events")
	}
	if got := recycled.LabelString(3); got != "" {
		t.Fatalf("label 3 survived ResetAll: %q", got)
	}

	capture(recycled)
	var got bytes.Buffer
	if err := recycled.WriteChromeTrace(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("recycled tracer export differs from fresh:\nfresh:    %s\nrecycled: %s", want.String(), got.String())
	}

	// Pre-interned kernel labels must still work after ResetAll.
	recycled.ResetAll()
	recycled.KernelDispatch(sim.Time(10), 1)
	if recycled.LabelString(1) != "kernel" || recycled.LabelString(2) != "dispatch" {
		t.Fatal("ResetAll must retain the pre-interned kernel labels")
	}

	var nilTr *Tracer
	nilTr.ResetAll() // must not panic
}
