package core

import (
	"autosec/internal/reliability"
)

// EnableHealthMonitoring attaches a device-reliability monitor (the §3
// "device reliability" robustness pillar) whose warnings and failures
// land in the vehicle's tamper-evident audit log — early wear-out
// warnings are maintenance-relevant evidence just as attacks are.
// tickHours is the operating-hours-per-virtual-minute compression.
func (v *Vehicle) EnableHealthMonitoring(tickHours float64) *reliability.Monitor {
	m := reliability.NewMonitor(v.Kernel, tickHours)
	m.OnEvent(func(kind, component string) {
		v.Audit.Append(v.Kernel.Now(), "health", kind+": "+component)
	})
	_ = v.Arch.Install(SecureProcessing, Implementation{Name: "health-monitor", Version: 1, Component: m})
	return m
}
