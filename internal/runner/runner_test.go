package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSeeds(t *testing.T) {
	got := Seeds(5, 3)
	want := []uint64{5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("Seeds(5,3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Seeds(5,3) = %v, want %v", got, want)
		}
	}
	if Seeds(1, 0) != nil || Seeds(1, -1) != nil {
		t.Fatal("Seeds with n<=0 should be nil")
	}
}

// Results come back in seed order no matter how replicates are scheduled.
func TestMapSeedOrder(t *testing.T) {
	seeds := Seeds(100, 32)
	results, err := Map(context.Background(), seeds, 8, func(_ context.Context, seed uint64) (uint64, error) {
		return seed * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Seed != seeds[i] {
			t.Fatalf("result %d carries seed %d, want %d", i, r.Seed, seeds[i])
		}
		if r.Err != nil || r.Value != seeds[i]*2 {
			t.Fatalf("result %d = (%d, %v), want (%d, nil)", i, r.Value, r.Err, seeds[i]*2)
		}
	}
}

// The pool really is bounded: concurrent replicates never exceed workers.
func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(context.Background(), Seeds(1, 24), workers, func(_ context.Context, _ uint64) (int, error) {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent replicates, pool bound is %d", p, workers)
	}
}

// A panicking replicate surfaces as that result's error; the rest of the
// pool is unharmed.
func TestMapPanicIsolated(t *testing.T) {
	results, err := Map(context.Background(), Seeds(1, 8), 4, func(_ context.Context, seed uint64) (int, error) {
		if seed == 3 {
			panic("boom")
		}
		return int(seed), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Seed == 3 {
			if r.Err == nil {
				t.Fatal("panicking seed reported no error")
			}
			continue
		}
		if r.Err != nil || r.Value != int(r.Seed) {
			t.Fatalf("seed %d = (%d, %v), want (%d, nil)", r.Seed, r.Value, r.Err, r.Seed)
		}
	}
}

// Cancellation stops dispatch: undispatched replicates carry ctx's error
// and Map reports the cancellation.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var started atomic.Int64
	done := make(chan struct{})
	var results []Result[int]
	var err error
	go func() {
		defer close(done)
		results, err = Map(ctx, Seeds(1, 16), 2, func(_ context.Context, seed uint64) (int, error) {
			started.Add(1)
			<-release
			return int(seed), nil
		})
	}()
	for started.Load() < 2 {
		runtime.Gosched()
	}
	cancel()
	close(release)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map error = %v, want context.Canceled", err)
	}
	var cancelled int
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no replicate carried the cancellation error")
	}
}
