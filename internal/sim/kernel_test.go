package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	for _, d := range []Duration{5 * Millisecond, 1 * Millisecond, 3 * Millisecond} {
		d := d
		k.At(d, func() { got = append(got, k.Now()) })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{1 * Millisecond, 3 * Millisecond, 5 * Millisecond}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKernelFIFOAmongEqualDeadlines(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Millisecond, func() { order = append(order, i) })
	}
	_ = k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d]=%d, want FIFO", i, v)
		}
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	ran := false
	e := k.At(Millisecond, func() { ran = true })
	k.Cancel(e)
	if !e.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	_ = k.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// After the run the node has been reclaimed; the handle is stale and
	// inert: it reports false and a second Cancel through it is a no-op.
	if e.Cancelled() {
		t.Fatal("stale handle still reports cancelled")
	}
	k.Cancel(e)
}

// A stale handle must never cancel the recycled node's new occupant.
func TestKernelStaleHandleIsInert(t *testing.T) {
	k := NewKernel(1)
	first := k.At(Millisecond, func() {})
	_ = k.Run() // first's node returns to the free list
	ran := false
	second := k.At(2*Millisecond, func() { ran = true }) // reuses the node
	k.Cancel(first)                                      // stale: must not touch second
	if k.Pending() != 1 {
		t.Fatalf("pending=%d after stale cancel, want 1", k.Pending())
	}
	_ = k.Run()
	if !ran {
		t.Fatal("stale Cancel killed a live event")
	}
	_ = second
}

func TestKernelSchedulingInsideEvents(t *testing.T) {
	k := NewKernel(1)
	var hits int
	k.At(0, func() {
		k.After(2*Millisecond, func() { hits++ })
		k.After(Millisecond, func() { hits++ })
	})
	_ = k.Run()
	if hits != 2 {
		t.Fatalf("hits=%d, want 2", hits)
	}
	if k.Now() != 2*Millisecond {
		t.Fatalf("final time %v, want 2ms", k.Now())
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(5*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(Millisecond, func() {})
	})
	_ = k.Run()
}

func TestKernelHalt(t *testing.T) {
	k := NewKernel(1)
	n := 0
	k.At(1, func() { n++; k.Halt() })
	k.At(2, func() { n++ })
	if err := k.Run(); err != ErrHalted {
		t.Fatalf("Run err=%v, want ErrHalted", err)
	}
	if n != 1 {
		t.Fatalf("ran %d events before halt, want 1", n)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel(1)
	var ran []Time
	for _, d := range []Duration{Millisecond, 2 * Millisecond, 5 * Millisecond} {
		d := d
		k.At(d, func() { ran = append(ran, d) })
	}
	if err := k.RunUntil(3 * Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(ran) != 2 {
		t.Fatalf("ran %d events, want 2", len(ran))
	}
	if k.Now() != 3*Millisecond {
		t.Fatalf("clock at %v, want 3ms", k.Now())
	}
	// Remaining event still pending.
	if k.Pending() != 1 {
		t.Fatalf("pending=%d, want 1", k.Pending())
	}
	_ = k.Run()
	if len(ran) != 3 {
		t.Fatalf("after Run, ran %d events, want 3", len(ran))
	}
}

func TestKernelEvery(t *testing.T) {
	k := NewKernel(1)
	n := 0
	stop := k.Every(0, Millisecond, func() {
		n++
		if n == 5 {
			k.Halt()
		}
	})
	_ = k.Run()
	stop()
	if n != 5 {
		t.Fatalf("ticked %d times, want 5", n)
	}
	if k.Now() != 4*Millisecond {
		t.Fatalf("clock %v, want 4ms", k.Now())
	}
}

func TestKernelEveryStop(t *testing.T) {
	k := NewKernel(1)
	n := 0
	var stop func()
	stop = k.Every(0, Millisecond, func() {
		n++
		if n == 3 {
			stop()
		}
	})
	k.At(10*Millisecond, func() {}) // keep the run going past the stop
	_ = k.Run()
	if n != 3 {
		t.Fatalf("ticked %d times after stop, want 3", n)
	}
}

func TestKernelNextEventTime(t *testing.T) {
	k := NewKernel(1)
	if k.NextEventTime() != Never {
		t.Fatal("empty kernel should report Never")
	}
	e := k.At(7*Millisecond, func() {})
	if k.NextEventTime() != 7*Millisecond {
		t.Fatalf("next=%v, want 7ms", k.NextEventTime())
	}
	k.Cancel(e)
	if k.NextEventTime() != Never {
		t.Fatal("cancelled-only queue should report Never")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{Never, "never"},
		{2 * Second, "2.000000s"},
		{3 * Millisecond, "3.000ms"},
		{4 * Microsecond, "4.000us"},
		{17, "17ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String()=%q, want %q", int64(c.t), got, c.want)
		}
	}
}

// Property: for any batch of scheduled deadlines, dispatch order is
// non-decreasing in time.
func TestKernelOrderingProperty(t *testing.T) {
	f := func(ds []uint16) bool {
		k := NewKernel(42)
		var seen []Time
		for _, d := range ds {
			k.At(Time(d), func() { seen = append(seen, k.Now()) })
		}
		_ = k.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(ds)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKernelDeterminism(t *testing.T) {
	run := func() []uint64 {
		k := NewKernel(99)
		s := k.Stream("noise")
		var out []uint64
		k.Every(0, Millisecond, func() {
			out = append(out, s.Uint64())
			if len(out) == 100 {
				k.Halt()
			}
		})
		_ = k.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d", i)
		}
	}
}
