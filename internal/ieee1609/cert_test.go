package ieee1609

import (
	"errors"
	"testing"

	"autosec/internal/sim"
)

var allPSIDs = []PSID{PSIDBasicSafety, PSIDMisbehavior, PSIDInfrastructry, PSIDCRL}

func pki(t *testing.T) (*Authority, *Authority, *Store) {
	t.Helper()
	root, err := NewRootAuthority("root-ca", allPSIDs, 0, sim.Hour*24*365*10)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := root.IssueCA("enrollment-ca", []PSID{PSIDBasicSafety, PSIDMisbehavior}, 0, sim.Hour*24*365)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(root.Cert)
	store.AddCert(sub.Cert)
	return root, sub, store
}

func TestChainVerification(t *testing.T) {
	_, sub, store := pki(t)
	cred, err := sub.Issue("obu-1", []PSID{PSIDBasicSafety}, 0, sim.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.VerifyChain(cred.Cert, sim.Minute); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestChainRejectsExpired(t *testing.T) {
	_, sub, store := pki(t)
	cred, _ := sub.Issue("obu-1", []PSID{PSIDBasicSafety}, 0, sim.Hour, false)
	if err := store.VerifyChain(cred.Cert, 2*sim.Hour); !errors.Is(err, ErrExpired) {
		t.Fatalf("err=%v", err)
	}
	if err := store.VerifyChain(cred.Cert, -sim.Second); !errors.Is(err, ErrExpired) {
		t.Fatalf("before NotBefore: err=%v", err)
	}
}

func TestChainRejectsUnknownIssuer(t *testing.T) {
	other, err := NewRootAuthority("rogue-root", allPSIDs, 0, sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cred, _ := other.Issue("rogue-obu", []PSID{PSIDBasicSafety}, 0, sim.Hour, false)
	_, _, store := pki(t)
	if err := store.VerifyChain(cred.Cert, sim.Minute); !errors.Is(err, ErrUnknownIssuer) {
		t.Fatalf("err=%v", err)
	}
	// A foreign self-signed root is equally untrusted.
	if err := store.VerifyChain(other.Cert, sim.Minute); !errors.Is(err, ErrUnknownIssuer) {
		t.Fatalf("foreign root: err=%v", err)
	}
}

func TestChainRejectsPSIDEscalation(t *testing.T) {
	_, sub, store := pki(t)
	// sub may only issue BasicSafety/Misbehavior; a cert claiming
	// Infrastructure must be rejected even though the signature is valid.
	cred, err := sub.Issue("greedy-obu", []PSID{PSIDBasicSafety, PSIDInfrastructry}, 0, sim.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.VerifyChain(cred.Cert, sim.Minute); !errors.Is(err, ErrPSIDEscalate) {
		t.Fatalf("err=%v", err)
	}
}

func TestChainRejectsNonCAIssuer(t *testing.T) {
	_, sub, store := pki(t)
	leaf, _ := sub.Issue("obu-1", []PSID{PSIDBasicSafety}, 0, sim.Hour, false)
	store.AddCert(leaf.Cert)
	// Forge a certificate that names the leaf as its issuer. Signature
	// won't even matter: the CA flag check fires first.
	fake := &Certificate{
		Subject:   "forged",
		IssuerID:  leaf.Cert.ID(),
		PSIDs:     []PSID{PSIDBasicSafety},
		NotAfter:  sim.Hour,
		PublicKey: leaf.Cert.PublicKey,
		SigR:      leaf.Cert.SigR,
		SigS:      leaf.Cert.SigS,
	}
	if err := store.VerifyChain(fake, sim.Minute); !errors.Is(err, ErrNotCA) {
		t.Fatalf("err=%v", err)
	}
}

func TestChainRejectsTamperedCert(t *testing.T) {
	_, sub, store := pki(t)
	cred, _ := sub.Issue("obu-1", []PSID{PSIDBasicSafety}, 0, sim.Hour, false)
	cred.Cert.Subject = "obu-1-promoted" // invalidates issuer signature
	cred.Cert.idCached = false
	if err := store.VerifyChain(cred.Cert, sim.Minute); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err=%v", err)
	}
}

func TestCertIDStableAndDistinct(t *testing.T) {
	_, sub, _ := pki(t)
	a, _ := sub.Issue("a", []PSID{PSIDBasicSafety}, 0, sim.Hour, false)
	b, _ := sub.Issue("b", []PSID{PSIDBasicSafety}, 0, sim.Hour, false)
	if a.Cert.ID() != a.Cert.ID() {
		t.Fatal("ID not stable")
	}
	if a.Cert.ID() == b.Cert.ID() {
		t.Fatal("distinct certs share an ID")
	}
	if a.Cert.ID().String() == "" {
		t.Fatal("empty ID string")
	}
}

func TestPermitsAndValidity(t *testing.T) {
	c := &Certificate{PSIDs: []PSID{1, 2}, NotBefore: 10, NotAfter: 20}
	if !c.Permits(1) || c.Permits(3) {
		t.Fatal("Permits wrong")
	}
	if c.ValidAt(9) || !c.ValidAt(10) || !c.ValidAt(20) || c.ValidAt(21) {
		t.Fatal("ValidAt boundaries wrong")
	}
}

func TestRevocation(t *testing.T) {
	root, sub, store := pki(t)
	cred, _ := sub.Issue("obu-1", []PSID{PSIDBasicSafety}, 0, sim.Hour, false)
	if err := store.VerifyChain(cred.Cert, sim.Minute); err != nil {
		t.Fatal(err)
	}
	crl, err := root.SignCRL(1, []HashedID8{cred.Cert.ID()})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SetCRL(crl, sim.Minute); err != nil {
		t.Fatal(err)
	}
	if err := store.VerifyChain(cred.Cert, sim.Minute); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked cert verified: %v", err)
	}
}

func TestCRLStaleSequenceRejected(t *testing.T) {
	root, _, store := pki(t)
	crl2, _ := root.SignCRL(2, nil)
	if err := store.SetCRL(crl2, sim.Minute); err != nil {
		t.Fatal(err)
	}
	crl1, _ := root.SignCRL(1, nil)
	if err := store.SetCRL(crl1, sim.Minute); err == nil {
		t.Fatal("stale CRL accepted")
	}
}

func TestCRLSignerMustBeTrustedAndPermitted(t *testing.T) {
	_, sub, store := pki(t)
	// sub lacks PSIDCRL.
	subCRL := &Authority{Cert: sub.Cert, priv: nil}
	_ = subCRL
	rogue, _ := NewRootAuthority("rogue", allPSIDs, 0, sim.Hour)
	crl, _ := rogue.SignCRL(1, nil)
	if err := store.SetCRL(crl, sim.Minute); err == nil {
		t.Fatal("CRL from untrusted root accepted")
	}
	crlSub, err := sub.SignCRL(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SetCRL(crlSub, sim.Minute); !errors.Is(err, ErrPSIDDenied) {
		t.Fatalf("CRL signer without PSIDCRL accepted: %v", err)
	}
}

func TestCRLTamperRejected(t *testing.T) {
	root, sub, store := pki(t)
	cred, _ := sub.Issue("obu-1", []PSID{PSIDBasicSafety}, 0, sim.Hour, false)
	crl, _ := root.SignCRL(1, nil)
	crl.Revoked = append(crl.Revoked, cred.Cert.ID()) // tamper after signing
	if err := store.SetCRL(crl, sim.Minute); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered CRL accepted: %v", err)
	}
}

func TestChainDepthLimit(t *testing.T) {
	root, _ := NewRootAuthority("root", allPSIDs, 0, sim.Hour)
	store := NewStore(root.Cert)
	store.MaxChainDepth = 2
	ca := root
	var leafCA *Authority
	for i := 0; i < 4; i++ {
		next, err := ca.IssueCA("ca", allPSIDs, 0, sim.Hour)
		if err != nil {
			t.Fatal(err)
		}
		store.AddCert(next.Cert)
		ca = next
		leafCA = next
	}
	cred, _ := leafCA.Issue("deep", []PSID{PSIDBasicSafety}, 0, sim.Hour, false)
	if err := store.VerifyChain(cred.Cert, sim.Minute); !errors.Is(err, ErrChainDepth) {
		t.Fatalf("err=%v", err)
	}
}
